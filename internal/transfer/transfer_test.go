package transfer

import (
	"math"
	"testing"
	"testing/quick"

	"autrascale/internal/gp"
	"autrascale/internal/stat"
)

// fnPredictor adapts a plain function to the Predictor interface.
type fnPredictor func(x []float64) float64

func (f fnPredictor) PredictMean(x []float64) float64 { return f(x) }

func TestFitResidualValidation(t *testing.T) {
	if _, err := FitResidual(nil, []Sample{{X: []float64{1}, Y: 1}}); err == nil {
		t.Fatal("nil prev should error")
	}
	prev := fnPredictor(func(x []float64) float64 { return 0 })
	if _, err := FitResidual(prev, nil); err == nil {
		t.Fatal("no samples should error")
	}
	if _, err := FitResidual(prev, []Sample{{X: nil, Y: 1}}); err == nil {
		t.Fatal("empty input should error")
	}
}

// The key transfer property: when the new-rate function is the old one
// plus a smooth shift, a few samples suffice to predict it well —
// much better than either the old model alone or a from-scratch GP on the
// same few samples.
func TestResidualTransferBeatsScratch(t *testing.T) {
	oldF := func(x []float64) float64 { return math.Sin(x[0]) }
	newF := func(x []float64) float64 { return math.Sin(x[0]) - 0.4 + 0.05*x[0] }

	// Previous-rate model: a GP trained densely on oldF.
	var oxs [][]float64
	var oys []float64
	for x := 0.0; x <= 6; x += 0.25 {
		oxs = append(oxs, []float64{x})
		oys = append(oys, oldF([]float64{x}))
	}
	prev, err := gp.FitAuto(oxs, oys, gp.FitOptions{Family: gp.FamilyMatern52})
	if err != nil {
		t.Fatal(err)
	}

	// Only 4 real samples at the new rate.
	sparse := []Sample{}
	for _, x := range []float64{0.5, 2, 3.5, 5} {
		sparse = append(sparse, Sample{X: []float64{x}, Y: newF([]float64{x})})
	}
	rm, err := FitResidual(prev, sparse)
	if err != nil {
		t.Fatal(err)
	}

	// From-scratch GP on the same sparse data, for comparison.
	sxs := make([][]float64, len(sparse))
	sys := make([]float64, len(sparse))
	for i, s := range sparse {
		sxs[i] = s.X
		sys[i] = s.Y
	}
	scratch, err := gp.FitAuto(sxs, sys, gp.FitOptions{Family: gp.FamilyMatern52})
	if err != nil {
		t.Fatal(err)
	}

	var errTransfer, errScratch, errOld float64
	n := 0
	for x := 0.25; x <= 5.75; x += 0.25 {
		xt := []float64{x}
		want := newF(xt)
		errTransfer += math.Abs(rm.PredictMean(xt) - want)
		errScratch += math.Abs(scratch.PredictMean(xt) - want)
		errOld += math.Abs(prev.PredictMean(xt) - want)
		n++
	}
	errTransfer /= float64(n)
	errScratch /= float64(n)
	errOld /= float64(n)
	if errTransfer > 0.1 {
		t.Fatalf("transfer error = %v, want < 0.1", errTransfer)
	}
	if errTransfer >= errScratch {
		t.Fatalf("transfer (%v) should beat scratch (%v) on sparse data", errTransfer, errScratch)
	}
	if errTransfer >= errOld {
		t.Fatalf("transfer (%v) should beat the stale model (%v)", errTransfer, errOld)
	}
}

func TestResidualExactOnTrainingPoints(t *testing.T) {
	prev := fnPredictor(func(x []float64) float64 { return 2 * x[0] })
	samples := []Sample{
		{X: []float64{1}, Y: 3}, {X: []float64{2}, Y: 5}, {X: []float64{3}, Y: 6.5},
	}
	rm, err := FitResidual(prev, samples)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		if got := rm.PredictMean(s.X); math.Abs(got-s.Y) > 0.05 {
			t.Fatalf("PredictMean(%v) = %v, want %v", s.X, got, s.Y)
		}
	}
}

func TestModelLibrary(t *testing.T) {
	l := NewModelLibrary()
	if _, ok := l.Nearest(100); ok {
		t.Fatal("empty library should return ok=false")
	}
	if err := l.Put(0, fnPredictor(nil)); err == nil {
		t.Fatal("rate 0 should error")
	}
	if err := l.Put(100, nil); err == nil {
		t.Fatal("nil model should error")
	}
	m20 := fnPredictor(func(x []float64) float64 { return 20 })
	m80 := fnPredictor(func(x []float64) float64 { return 80 })
	if err := l.Put(20e3, m20); err != nil {
		t.Fatal(err)
	}
	if err := l.Put(80e3, m80); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d", l.Len())
	}
	e, ok := l.Nearest(30e3)
	if !ok || e.RateRPS != 20e3 {
		t.Fatalf("Nearest(30k) = %v", e.RateRPS)
	}
	e, _ = l.Nearest(75e3)
	if e.RateRPS != 80e3 {
		t.Fatalf("Nearest(75k) = %v", e.RateRPS)
	}
	if _, ok := l.Get(20e3); !ok {
		t.Fatal("Get exact rate failed")
	}
	if _, ok := l.Get(30e3); ok {
		t.Fatal("Get missing rate should be false")
	}
	rates := l.Rates()
	if len(rates) != 2 || rates[0] != 20e3 || rates[1] != 80e3 {
		t.Fatalf("Rates = %v", rates)
	}
	// Replacement keeps a single entry.
	if err := l.Put(20e3, m80); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 2 {
		t.Fatalf("replace changed Len to %d", l.Len())
	}
	got, _ := l.Get(20e3)
	if got.PredictMean(nil) != 80 {
		t.Fatal("Put did not replace the model")
	}
}

// Property: nearest always returns the entry minimizing |rate − query|.
func TestNearestProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := stat.NewRNG(seed)
		l := NewModelLibrary()
		n := 1 + r.Intn(10)
		rates := make([]float64, n)
		for i := range rates {
			rates[i] = 1 + r.Float64()*1e5
			_ = l.Put(rates[i], fnPredictor(func(x []float64) float64 { return 0 }))
		}
		q := r.Float64() * 1.2e5
		e, ok := l.Nearest(q)
		if !ok {
			return false
		}
		for _, rt := range rates {
			if math.Abs(rt-q) < math.Abs(e.RateRPS-q)-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// The binary-search Nearest must agree with the old linear scan on its
// edge cases: exact hits, exact midpoints (tie resolves to the lower
// rate, the historical first-wins behavior), and queries outside the
// stored range on either side.
func TestNearestBinarySearchEdgeCases(t *testing.T) {
	l := NewModelLibrary()
	zero := fnPredictor(func(x []float64) float64 { return 0 })
	for _, rate := range []float64{1000, 2000, 4000, 8000} {
		if err := l.Put(rate, zero); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		name  string
		query float64
		want  float64
	}{
		{"exact-hit-lowest", 1000, 1000},
		{"exact-hit-middle", 4000, 4000},
		{"exact-hit-highest", 8000, 8000},
		{"midpoint-ties-to-lower", 1500, 1000},
		{"midpoint-ties-to-lower-high", 6000, 4000},
		{"just-above-midpoint", 1501, 2000},
		{"just-below-midpoint", 2999, 2000},
		{"below-range", 50, 1000},
		{"above-range", 1e6, 8000},
	}
	for _, c := range cases {
		e, ok := l.Nearest(c.query)
		if !ok {
			t.Fatalf("%s: Nearest(%v) found nothing", c.name, c.query)
		}
		if e.RateRPS != c.want {
			t.Errorf("%s: Nearest(%v) = %v, want %v", c.name, c.query, e.RateRPS, c.want)
		}
	}

	// Entries exposes the immutable sorted snapshot.
	entries := l.Entries()
	if len(entries) != 4 {
		t.Fatalf("Entries returned %d entries, want 4", len(entries))
	}
	for i := 1; i < len(entries); i++ {
		if entries[i-1].RateRPS >= entries[i].RateRPS {
			t.Fatalf("Entries not sorted at %d: %v >= %v", i, entries[i-1].RateRPS, entries[i].RateRPS)
		}
	}
	// The snapshot is stable across later writes.
	if err := l.Put(3000, zero); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatal("previously taken snapshot changed length after Put")
	}
	if len(l.Entries()) != 5 {
		t.Fatalf("new snapshot has %d entries, want 5", len(l.Entries()))
	}
}
