package gp

import (
	"errors"
	"fmt"
	"math"

	"autrascale/internal/mat"
)

// ErrNoData is returned when fitting or predicting with no training points.
var ErrNoData = errors.New("gp: no training data")

// Regressor is an exact Gaussian process regressor. The zero value is not
// usable; construct with New and call Fit before Predict.
//
// The model is y = f(x) + ε with f ~ GP(mean, k) and ε ~ N(0, Noise). The
// prior mean is the constant training-target mean (standard "centered"
// parameterization), which keeps extrapolation anchored to typical scores
// rather than zero.
type Regressor struct {
	kernel Kernel
	noise  float64

	xs    [][]float64
	ys    []float64 // centered targets
	meanY float64

	chol  *mat.Cholesky
	alpha []float64 // K⁻¹·(y − mean)
}

// New returns a Regressor with the given kernel and observation noise
// variance (noise must be > 0 for numerical stability; values around 1e-6
// to 1e-2 are typical for normalized targets).
func New(kernel Kernel, noise float64) *Regressor {
	if noise <= 0 {
		panic("gp: noise must be positive")
	}
	return &Regressor{kernel: kernel, noise: noise}
}

// Kernel returns the kernel in use.
func (r *Regressor) Kernel() Kernel { return r.kernel }

// Noise returns the observation noise variance.
func (r *Regressor) Noise() float64 { return r.noise }

// NumData returns the number of training points.
func (r *Regressor) NumData() int { return len(r.xs) }

// Fit trains the GP on (xs, ys). Inputs are copied. All xs must share one
// dimensionality, and len(xs) must equal len(ys).
func (r *Regressor) Fit(xs [][]float64, ys []float64) error {
	if len(xs) == 0 {
		return ErrNoData
	}
	if len(xs) != len(ys) {
		return fmt.Errorf("gp: %d inputs but %d targets", len(xs), len(ys))
	}
	dim := len(xs[0])
	cx := make([][]float64, len(xs))
	for i, x := range xs {
		if len(x) != dim {
			return fmt.Errorf("gp: input %d has dim %d, want %d", i, len(x), dim)
		}
		cx[i] = mat.CopyVec(x)
	}
	meanY := 0.0
	for _, y := range ys {
		meanY += y
	}
	meanY /= float64(len(ys))
	cy := make([]float64, len(ys))
	for i, y := range ys {
		cy[i] = y - meanY
	}

	k := gram(r.kernel, cx, r.noise)
	chol, _, err := mat.NewCholeskyJittered(k, 1e-10, 1e-2)
	if err != nil {
		return fmt.Errorf("gp: kernel matrix not positive definite: %w", err)
	}
	r.xs, r.ys, r.meanY = cx, cy, meanY
	r.chol = chol
	r.alpha = chol.SolveVec(cy)
	return nil
}

// Predict returns the posterior mean and variance at x. The variance is
// the latent-function variance (excluding observation noise), floored at 0.
func (r *Regressor) Predict(x []float64) (mean, variance float64, err error) {
	if r.chol == nil {
		return 0, 0, ErrNoData
	}
	ks := crossCov(r.kernel, x, r.xs)
	mean = r.meanY + mat.Dot(ks, r.alpha)
	v := r.chol.SolveLowerVec(ks)
	variance = r.kernel.Eval(x, x) - mat.Dot(v, v)
	if variance < 0 {
		variance = 0
	}
	return mean, variance, nil
}

// PredictMean returns just the posterior mean at x (0 when unfitted).
func (r *Regressor) PredictMean(x []float64) float64 {
	m, _, err := r.Predict(x)
	if err != nil {
		return 0
	}
	return m
}

// PredictStd returns the posterior mean and standard deviation at x.
func (r *Regressor) PredictStd(x []float64) (mean, std float64, err error) {
	m, v, err := r.Predict(x)
	return m, math.Sqrt(v), err
}

// TrainingData returns copies of the fitted inputs and (de-centered)
// targets — enough to refit an equivalent model, which is how the
// transfer package persists benefit models.
func (r *Regressor) TrainingData() (xs [][]float64, ys []float64) {
	xs = make([][]float64, len(r.xs))
	for i, x := range r.xs {
		xs[i] = mat.CopyVec(x)
	}
	ys = make([]float64, len(r.ys))
	for i, y := range r.ys {
		ys[i] = y + r.meanY
	}
	return xs, ys
}

// LogMarginalLikelihood returns log p(y | X, θ) for the fitted model:
//
//	−½ yᵀK⁻¹y − ½ log|K| − (n/2)·log 2π
func (r *Regressor) LogMarginalLikelihood() (float64, error) {
	if r.chol == nil {
		return 0, ErrNoData
	}
	n := float64(len(r.ys))
	fit := -0.5 * mat.Dot(r.ys, r.alpha)
	complexity := -0.5 * r.chol.LogDet()
	return fit + complexity - 0.5*n*math.Log(2*math.Pi), nil
}
