package gp

import (
	"errors"
	"fmt"
	"math"

	"autrascale/internal/mat"
)

// ErrNoData is returned when fitting or predicting with no training points.
var ErrNoData = errors.New("gp: no training data")

// Regressor is an exact Gaussian process regressor. The zero value is not
// usable; construct with New and call Fit before Predict.
//
// The model is y = f(x) + ε with f ~ GP(mean, k) and ε ~ N(0, Noise). The
// prior mean is the constant training-target mean (standard "centered"
// parameterization), which keeps extrapolation anchored to typical scores
// rather than zero.
type Regressor struct {
	kernel Kernel
	noise  float64

	xs    [][]float64
	ys    []float64 // raw targets
	cy    []float64 // centered targets (ys − meanY)
	meanY float64

	chol   *mat.Cholesky
	alpha  []float64 // K⁻¹·(y − mean)
	jitter float64   // diagonal jitter folded into the factored K
}

// New returns a Regressor with the given kernel and observation noise
// variance (noise must be > 0 for numerical stability; values around 1e-6
// to 1e-2 are typical for normalized targets).
func New(kernel Kernel, noise float64) *Regressor {
	if noise <= 0 {
		panic("gp: noise must be positive")
	}
	return &Regressor{kernel: kernel, noise: noise}
}

// Kernel returns the kernel in use.
func (r *Regressor) Kernel() Kernel { return r.kernel }

// Noise returns the observation noise variance.
func (r *Regressor) Noise() float64 { return r.noise }

// NumData returns the number of training points.
func (r *Regressor) NumData() int { return len(r.xs) }

// Fit trains the GP on (xs, ys). Inputs are copied. All xs must share one
// dimensionality, and len(xs) must equal len(ys).
func (r *Regressor) Fit(xs [][]float64, ys []float64) error {
	if len(xs) == 0 {
		return ErrNoData
	}
	if len(xs) != len(ys) {
		return fmt.Errorf("gp: %d inputs but %d targets", len(xs), len(ys))
	}
	dim := len(xs[0])
	cx := make([][]float64, len(xs))
	for i, x := range xs {
		if len(x) != dim {
			return fmt.Errorf("gp: input %d has dim %d, want %d", i, len(x), dim)
		}
		cx[i] = mat.CopyVec(x)
	}
	ry := mat.CopyVec(ys)
	meanY, cy := centerTargets(ry, nil)

	k := gramLower(r.kernel, cx, r.noise)
	chol, jitter, err := mat.NewCholeskyJittered(k, 1e-10, 1e-2)
	if err != nil {
		return fmt.Errorf("gp: kernel matrix not positive definite: %w", err)
	}
	r.xs, r.ys, r.cy, r.meanY = cx, ry, cy, meanY
	r.chol = chol
	r.jitter = jitter
	r.alpha = chol.SolveVec(cy)
	return nil
}

// Append extends the fitted model with one observation in O(n²): the
// Cholesky factor is bordered with the new covariance row (rank-1 update)
// instead of refactored from scratch, then the prior mean is re-centered
// and the weight vector re-solved against the grown factor. The resulting
// model is numerically identical to refitting on the full data with the
// same kernel, noise, and jitter.
//
// Kernel hyperparameters are NOT re-selected — callers that tune them
// (e.g. via FitAuto) should periodically do a full refit. Append fails
// (leaving the model unchanged) when the regressor is unfitted, the input
// dimension mismatches, or the extended kernel matrix is not positive
// definite at the current jitter — the caller falls back to a full refit.
func (r *Regressor) Append(x []float64, y float64) error {
	if r.chol == nil {
		return ErrNoData
	}
	if len(x) != len(r.xs[0]) {
		return fmt.Errorf("gp: append input dim %d, want %d", len(x), len(r.xs[0]))
	}
	col := crossCov(r.kernel, x, r.xs)
	diag := r.kernel.Eval(x, x) + r.noise + r.jitter
	if err := r.chol.Append(col, diag); err != nil {
		return fmt.Errorf("gp: appended kernel matrix not positive definite: %w", err)
	}
	r.xs = append(r.xs, mat.CopyVec(x))
	r.ys = append(r.ys, y)
	r.meanY, r.cy = centerTargets(r.ys, r.cy[:0])
	if cap(r.alpha) < len(r.ys) {
		r.alpha = make([]float64, len(r.ys))
	}
	r.alpha = r.alpha[:len(r.ys)]
	r.chol.SolveVecInto(r.alpha, r.cy)
	return nil
}

// centerTargets computes the mean of ys and the centered targets, writing
// into dst (grown as needed; pass nil to allocate).
func centerTargets(ys []float64, dst []float64) (meanY float64, cy []float64) {
	for _, y := range ys {
		meanY += y
	}
	meanY /= float64(len(ys))
	if cap(dst) < len(ys) {
		dst = make([]float64, 0, len(ys))
	}
	cy = dst[:len(ys)]
	for i, y := range ys {
		cy[i] = y - meanY
	}
	return meanY, cy
}

// Workspace holds reusable scratch buffers for prediction, so repeated
// Predict calls over one fitted model (an acquisition sweep) perform zero
// heap allocations. A Workspace must not be shared between goroutines;
// concurrent sweeps use one Workspace per worker. The zero value is ready
// to use and sizes itself on first use.
type Workspace struct {
	ks []float64 // cross-covariance k(x, X)
	v  []float64 // forward-substitution scratch L⁻¹·ks
}

func (w *Workspace) ensure(n int) {
	if cap(w.ks) < n {
		w.ks = make([]float64, n)
		w.v = make([]float64, n)
	}
	w.ks = w.ks[:n]
	w.v = w.v[:n]
}

// PredictWS returns the posterior mean and variance at x using ws for
// scratch space (allocation-free once ws is warm). The variance is the
// latent-function variance (excluding observation noise), floored at 0.
func (r *Regressor) PredictWS(ws *Workspace, x []float64) (mean, variance float64, err error) {
	if r.chol == nil {
		return 0, 0, ErrNoData
	}
	ws.ensure(len(r.xs))
	ks := crossCovInto(ws.ks, r.kernel, x, r.xs)
	mean = r.meanY + mat.Dot(ks, r.alpha)
	v := r.chol.SolveLowerVecInto(ws.v, ks)
	variance = r.kernel.Eval(x, x) - mat.Dot(v, v)
	if variance < 0 {
		variance = 0
	}
	return mean, variance, nil
}

// PredictMeanWS returns just the posterior mean at x using ws for scratch
// — it skips the triangular solve the variance needs, roughly halving the
// cost of mean-only sweeps, and allocates nothing once ws is warm.
func (r *Regressor) PredictMeanWS(ws *Workspace, x []float64) (float64, error) {
	if r.chol == nil {
		return 0, ErrNoData
	}
	ws.ensure(len(r.xs))
	ks := crossCovInto(ws.ks, r.kernel, x, r.xs)
	return r.meanY + mat.Dot(ks, r.alpha), nil
}

// PredictBatch fills means[i] and variances[i] with the posterior at each
// xs[i], reusing ws across the batch so the steady state allocates
// nothing. means and variances must be at least len(xs) long; either may
// be nil to skip that output (skipping variances also skips the
// triangular solve, halving the cost of mean-only sweeps).
func (r *Regressor) PredictBatch(ws *Workspace, xs [][]float64, means, variances []float64) error {
	if r.chol == nil {
		return ErrNoData
	}
	if means != nil && len(means) < len(xs) {
		return fmt.Errorf("gp: means length %d < batch %d", len(means), len(xs))
	}
	if variances != nil && len(variances) < len(xs) {
		return fmt.Errorf("gp: variances length %d < batch %d", len(variances), len(xs))
	}
	ws.ensure(len(r.xs))
	for i, x := range xs {
		ks := crossCovInto(ws.ks, r.kernel, x, r.xs)
		if means != nil {
			means[i] = r.meanY + mat.Dot(ks, r.alpha)
		}
		if variances != nil {
			v := r.chol.SolveLowerVecInto(ws.v, ks)
			variance := r.kernel.Eval(x, x) - mat.Dot(v, v)
			if variance < 0 {
				variance = 0
			}
			variances[i] = variance
		}
	}
	return nil
}

// Predict returns the posterior mean and variance at x. The variance is
// the latent-function variance (excluding observation noise), floored at 0.
func (r *Regressor) Predict(x []float64) (mean, variance float64, err error) {
	var ws Workspace
	return r.PredictWS(&ws, x)
}

// PredictMean returns just the posterior mean at x (0 when unfitted).
func (r *Regressor) PredictMean(x []float64) float64 {
	m, _, err := r.Predict(x)
	if err != nil {
		return 0
	}
	return m
}

// PredictStd returns the posterior mean and standard deviation at x.
func (r *Regressor) PredictStd(x []float64) (mean, std float64, err error) {
	m, v, err := r.Predict(x)
	return m, math.Sqrt(v), err
}

// TrainingData returns copies of the fitted inputs and targets — enough to
// refit an equivalent model, which is how the transfer package persists
// benefit models.
func (r *Regressor) TrainingData() (xs [][]float64, ys []float64) {
	xs = make([][]float64, len(r.xs))
	for i, x := range r.xs {
		xs[i] = mat.CopyVec(x)
	}
	return xs, mat.CopyVec(r.ys)
}

// LogMarginalLikelihood returns log p(y | X, θ) for the fitted model:
//
//	−½ yᵀK⁻¹y − ½ log|K| − (n/2)·log 2π
func (r *Regressor) LogMarginalLikelihood() (float64, error) {
	if r.chol == nil {
		return 0, ErrNoData
	}
	n := float64(len(r.ys))
	fit := -0.5 * mat.Dot(r.cy, r.alpha)
	complexity := -0.5 * r.chol.LogDet()
	return fit + complexity - 0.5*n*math.Log(2*math.Pi), nil
}
