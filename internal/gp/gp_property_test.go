package gp

import (
	"fmt"
	"math"
	"testing"

	"autrascale/internal/stat"
)

// Property: a GP posterior is a distribution, so its predictive variance
// must be finite and non-negative at every query point, for every kernel
// family, on arbitrary data — including near-duplicate inputs, which are
// exactly where a sloppy Cholesky goes numerically negative.
func TestPosteriorVarianceNonNegativeProperty(t *testing.T) {
	families := []KernelFamily{FamilyMatern52, FamilyMatern32, FamilyRBF}
	for trial := 0; trial < 40; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			rng := stat.NewRNG(uint64(7000 + trial))
			n := 3 + rng.Intn(30)
			dim := 1 + rng.Intn(4)
			xs := make([][]float64, n)
			ys := make([]float64, n)
			for i := range xs {
				x := make([]float64, dim)
				for d := range x {
					x[d] = 20 * rng.Float64()
				}
				// Every fourth point is a near-duplicate of an earlier one
				// — the ill-conditioned case.
				if i > 0 && i%4 == 0 {
					copy(x, xs[rng.Intn(i)])
					x[0] += 1e-9
				}
				xs[i] = x
				ys[i] = math.Sin(x[0]) + 0.1*rng.Normal()
			}

			r, err := FitAuto(xs, ys, FitOptions{Family: families[trial%len(families)]})
			if err != nil {
				t.Fatal(err)
			}
			ws := &Workspace{}
			check := func(x []float64, where string) {
				mean, variance, err := r.PredictWS(ws, x)
				if err != nil {
					t.Fatal(err)
				}
				if variance < 0 || math.IsNaN(variance) || math.IsInf(variance, 0) {
					t.Fatalf("%s: posterior variance %v at %v is not a variance", where, variance, x)
				}
				if math.IsNaN(mean) || math.IsInf(mean, 0) {
					t.Fatalf("%s: posterior mean %v at %v", where, mean, x)
				}
				if _, std, err := r.PredictStd(x); err != nil || std < 0 || math.IsNaN(std) {
					t.Fatalf("%s: posterior std %v (err %v)", where, std, err)
				}
			}
			// At the training points (variance should collapse toward the
			// noise floor, never below zero)…
			for _, x := range xs {
				check(x, "training point")
			}
			// …and away from them.
			for q := 0; q < 20; q++ {
				x := make([]float64, dim)
				for d := range x {
					x[d] = -10 + 60*rng.Float64()
				}
				check(x, "query point")
			}
			// Incremental appends preserve the property.
			extra := make([]float64, dim)
			for d := range extra {
				extra[d] = 20 * rng.Float64()
			}
			if err := r.Append(extra, math.Sin(extra[0])); err != nil {
				t.Fatal(err)
			}
			check(extra, "after Append")
		})
	}
}
