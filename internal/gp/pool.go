package gp

import "sync"

// A fleet runs thousands of controllers, each of which needs prediction
// scratch only for the few milliseconds a planning session is active.
// Giving every controller (and every acquisition-sweep goroutine) its
// own long-lived Workspace wastes memory and still allocates on first
// use; a process-wide pool lets the whole fleet's steady-state ticks
// reuse a handful of warm buffers instead.
var workspacePool = sync.Pool{New: func() any { return new(Workspace) }}

// GetWorkspace returns a Workspace from the shared pool, warm when one
// was returned before. Callers must hand it back with PutWorkspace when
// the sweep ends; a Workspace is single-goroutine property in between.
func GetWorkspace() *Workspace { return workspacePool.Get().(*Workspace) }

// PutWorkspace returns ws to the shared pool. ws must not be used after.
// Buffers keep their capacity, so the next GetWorkspace on a similarly
// sized model allocates nothing.
func PutWorkspace(ws *Workspace) {
	if ws != nil {
		workspacePool.Put(ws)
	}
}
