package gp

import (
	"math"
)

// KernelFamily identifies a kernel shape for hyperparameter search.
type KernelFamily int

// Supported kernel families.
const (
	FamilyMatern52 KernelFamily = iota
	FamilyMatern32
	FamilyRBF
)

// makeKernel constructs a kernel of the family with the given parameters.
func (f KernelFamily) makeKernel(variance, lengthScale float64) Kernel {
	switch f {
	case FamilyMatern32:
		return Matern32{Variance: variance, LengthScale: lengthScale}
	case FamilyRBF:
		return RBF{Variance: variance, LengthScale: lengthScale}
	default:
		return Matern52{Variance: variance, LengthScale: lengthScale}
	}
}

// FitOptions controls hyperparameter selection in FitAuto.
type FitOptions struct {
	Family KernelFamily
	// Noise is the observation noise variance; if 0, a small default is
	// chosen relative to the target variance.
	Noise float64
	// LengthScales is the grid of candidate length scales. If empty, a
	// log-spaced grid spanning the data diameter is generated.
	LengthScales []float64
	// Variances is the grid of candidate signal variances. If empty, a
	// grid around the empirical target variance is generated.
	Variances []float64
}

// FitAuto selects kernel hyperparameters by maximizing the log marginal
// likelihood over a grid and returns the fitted regressor. Grid search is
// derivative-free, robust for the small sample counts AuTraScale works
// with (tens of configurations), and deterministic.
func FitAuto(xs [][]float64, ys []float64, opts FitOptions) (*Regressor, error) {
	if len(xs) == 0 {
		return nil, ErrNoData
	}
	varY := variance(ys)
	if varY <= 0 {
		varY = 1e-6
	}
	noise := opts.Noise
	if noise <= 0 {
		noise = math.Max(1e-6, varY*1e-3)
	}
	lens := opts.LengthScales
	if len(lens) == 0 {
		lens = defaultLengthScales(xs)
	}
	vars := opts.Variances
	if len(vars) == 0 {
		vars = []float64{varY * 0.25, varY * 0.5, varY, varY * 2, varY * 4}
	}

	var best *Regressor
	bestLML := math.Inf(-1)
	for _, ls := range lens {
		for _, v := range vars {
			r := New(opts.Family.makeKernel(v, ls), noise)
			if err := r.Fit(xs, ys); err != nil {
				continue
			}
			lml, err := r.LogMarginalLikelihood()
			if err != nil || math.IsNaN(lml) {
				continue
			}
			if lml > bestLML {
				bestLML = lml
				best = r
			}
		}
	}
	if best == nil {
		// Fall back to a fixed, conservative kernel.
		r := New(opts.Family.makeKernel(varY, 1), noise)
		if err := r.Fit(xs, ys); err != nil {
			return nil, err
		}
		return r, nil
	}
	return best, nil
}

// defaultLengthScales builds a log-spaced grid from ~2% to ~2x of the data
// diameter (largest pairwise distance), so at least one scale is in a
// sensible range regardless of input units.
func defaultLengthScales(xs [][]float64) []float64 {
	diam := dataDiameter(xs)
	if diam <= 0 {
		diam = 1
	}
	const steps = 7
	out := make([]float64, 0, steps)
	lo, hi := math.Log(diam*0.02), math.Log(diam*2)
	for i := 0; i < steps; i++ {
		out = append(out, math.Exp(lo+(hi-lo)*float64(i)/float64(steps-1)))
	}
	return out
}

func dataDiameter(xs [][]float64) float64 {
	var d2 float64
	for i := range xs {
		for j := i + 1; j < len(xs); j++ {
			var s float64
			for k := range xs[i] {
				dd := xs[i][k] - xs[j][k]
				s += dd * dd
			}
			if s > d2 {
				d2 = s
			}
		}
	}
	return math.Sqrt(d2)
}

func variance(ys []float64) float64 {
	n := len(ys)
	if n < 2 {
		return 0
	}
	var m float64
	for _, y := range ys {
		m += y
	}
	m /= float64(n)
	var s float64
	for _, y := range ys {
		d := y - m
		s += d * d
	}
	return s / float64(n-1)
}
