package gp

import (
	"fmt"
	"math"

	"autrascale/internal/mat"
)

// KernelFamily identifies a kernel shape for hyperparameter search.
type KernelFamily int

// Supported kernel families.
const (
	FamilyMatern52 KernelFamily = iota
	FamilyMatern32
	FamilyRBF
)

// makeKernel constructs a kernel of the family with the given parameters.
func (f KernelFamily) makeKernel(variance, lengthScale float64) RadialKernel {
	switch f {
	case FamilyMatern32:
		return Matern32{Variance: variance, LengthScale: lengthScale}
	case FamilyRBF:
		return RBF{Variance: variance, LengthScale: lengthScale}
	default:
		return Matern52{Variance: variance, LengthScale: lengthScale}
	}
}

// FitOptions controls hyperparameter selection in FitAuto.
type FitOptions struct {
	Family KernelFamily
	// Noise is the observation noise variance; if 0, a small default is
	// chosen relative to the target variance.
	Noise float64
	// LengthScales is the grid of candidate length scales. If empty, a
	// log-spaced grid spanning the data diameter is generated.
	LengthScales []float64
	// Variances is the grid of candidate signal variances. If empty, the
	// signal variance is profiled per length scale: one factorization at
	// the empirical target variance yields the closed-form optimum
	// v* = v₀·(yᵀK₀⁻¹y)/n of the scaled-kernel likelihood, which is then
	// scored exactly — two factorizations per length scale instead of a
	// fixed grid, with a continuous (usually better-fitting) variance.
	Variances []float64
}

// FitAuto selects kernel hyperparameters by maximizing the log marginal
// likelihood over a grid and returns the fitted regressor. Grid search is
// derivative-free, robust for the small sample counts AuTraScale works
// with (tens of configurations), and deterministic.
//
// The pairwise squared-distance matrix and centered targets are computed
// once and shared across every grid candidate (all candidate kernels are
// radial), and each candidate's Gram matrix reuses one buffer, so the
// search costs one O(n²·d) distance pass plus one O(n³) factorization per
// candidate instead of rebuilding everything from the raw inputs each
// time. The winning candidate's factor is kept as-is — no final refit.
func FitAuto(xs [][]float64, ys []float64, opts FitOptions) (*Regressor, error) {
	if len(xs) == 0 {
		return nil, ErrNoData
	}
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("gp: %d inputs but %d targets", len(xs), len(ys))
	}
	varY := variance(ys)
	if varY <= 0 {
		varY = 1e-6
	}
	noise := opts.Noise
	if noise <= 0 {
		noise = math.Max(1e-6, varY*1e-3)
	}

	n := len(xs)
	dim := len(xs[0])
	cx := make([][]float64, n)
	for i, x := range xs {
		if len(x) != dim {
			// Delegate detailed validation to Fit.
			r := New(opts.Family.makeKernel(varY, 1), noise)
			if err := r.Fit(xs, ys); err != nil {
				return nil, err
			}
			return r, nil
		}
		cx[i] = mat.CopyVec(x)
	}
	ry := mat.CopyVec(ys)
	meanY, cy := centerTargets(ry, nil)
	d2 := dist2Matrix(cx)

	lens := opts.LengthScales
	if len(lens) == 0 {
		lens = defaultLengthScales(d2)
	}

	var (
		bestKern   RadialKernel
		bestChol   *mat.Cholesky
		bestAlpha  []float64
		bestJitter float64
		bestLML    = math.Inf(-1)
	)
	shape := mat.NewMatrix(n, n) // unit-variance kernel values, per length scale
	g := mat.NewMatrix(n, n)     // Gram buffer, reused per candidate
	alpha := make([]float64, n)  // solve buffer, reused per candidate
	scratch := new(mat.Cholesky) // factor buffer, swapped with bestChol on improvement
	for _, ls := range lens {
		// All candidate kernels are radial with a multiplicative signal
		// variance: k_v(d²) = v·k_1(d²). Evaluate the transcendental part
		// once per length scale and derive each variance candidate's Gram
		// matrix by scaling — one exp/sqrt pass per length scale over the
		// whole variance search.
		gramFromDist2(shape, opts.Family.makeKernel(1, ls), d2, 0)
		// score factors K = v·S + noise·I, computes its exact LML, keeps
		// the winner, and returns cyᵀK⁻¹cy (NaN on failure) for the
		// profiled-variance step below.
		score := func(v float64) float64 {
			for i := 0; i < n; i++ {
				gr, sr := g.RawRow(i)[:i+1], shape.RawRow(i)[:i+1]
				for j, s := range sr {
					gr[j] = v * s
				}
				gr[i] += noise
			}
			jitter, err := scratch.FactorJittered(g, 1e-10, 1e-2)
			if err != nil {
				return math.NaN()
			}
			scratch.SolveVecInto(alpha, cy)
			fit := mat.Dot(cy, alpha)
			lml := -0.5*fit - 0.5*scratch.LogDet() - 0.5*float64(n)*math.Log(2*math.Pi)
			if math.IsNaN(lml) {
				return math.NaN()
			}
			if lml > bestLML {
				bestLML = lml
				bestKern = opts.Family.makeKernel(v, ls)
				bestChol, scratch = scratch, bestChol
				if scratch == nil {
					scratch = new(mat.Cholesky)
				}
				bestAlpha = append(bestAlpha[:0], alpha...)
				bestJitter = jitter
			}
			return fit
		}
		if len(opts.Variances) > 0 {
			for _, v := range opts.Variances {
				score(v)
			}
			continue
		}
		// Profiled variance: anchor at the empirical target variance, then
		// jump to the closed-form optimum of the scaled-kernel likelihood,
		// v* = v₀·(cyᵀK₀⁻¹cy)/n, and score it exactly.
		fit := score(varY)
		vStar := varY * fit / float64(n)
		if !math.IsNaN(vStar) && !math.IsInf(vStar, 0) && vStar > 0 &&
			math.Abs(vStar-varY) > 1e-12*varY {
			score(vStar)
		}
	}
	if bestChol == nil {
		// Fall back to a fixed, conservative kernel.
		r := New(opts.Family.makeKernel(varY, 1), noise)
		if err := r.Fit(xs, ys); err != nil {
			return nil, err
		}
		return r, nil
	}
	return &Regressor{
		kernel: bestKern,
		noise:  noise,
		xs:     cx,
		ys:     ry,
		cy:     cy,
		meanY:  meanY,
		chol:   bestChol,
		alpha:  bestAlpha,
		jitter: bestJitter,
	}, nil
}

// defaultLengthScales builds a log-spaced grid from ~2% to ~2x of the data
// diameter (largest pairwise distance), so at least one scale is in a
// sensible range regardless of input units. d2 holds the pairwise squared
// distances in its lower triangle (see dist2Matrix).
func defaultLengthScales(d2 *mat.Matrix) []float64 {
	diam := 0.0
	n := d2.Rows()
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			if v := d2.At(i, j); v > diam {
				diam = v
			}
		}
	}
	diam = math.Sqrt(diam)
	if diam <= 0 {
		diam = 1
	}
	const steps = 5
	out := make([]float64, 0, steps)
	lo, hi := math.Log(diam*0.02), math.Log(diam*2)
	for i := 0; i < steps; i++ {
		out = append(out, math.Exp(lo+(hi-lo)*float64(i)/float64(steps-1)))
	}
	return out
}

func variance(ys []float64) float64 {
	n := len(ys)
	if n < 2 {
		return 0
	}
	var m float64
	for _, y := range ys {
		m += y
	}
	m /= float64(n)
	var s float64
	for _, y := range ys {
		d := y - m
		s += d * d
	}
	return s / float64(n-1)
}
