// Package gp implements Gaussian process regression from scratch: Matérn
// and RBF covariance kernels, exact posterior inference via Cholesky
// factorization, log marginal likelihood, and a derivative-free
// hyperparameter search.
//
// This is the surrogate model of AuTraScale (paper §III-E): the paper uses
// a Gaussian process with a Matérn covariance kernel because it makes no
// prior assumption about the shape of the parallelism→score relationship
// and extrapolates better than, e.g., random forests.
package gp

import (
	"fmt"
	"math"

	"autrascale/internal/mat"
)

// Kernel is a positive-definite covariance function over ℝⁿ.
type Kernel interface {
	// Eval returns k(x, y).
	Eval(x, y []float64) float64
	// String describes the kernel and its hyperparameters.
	String() string
}

// Matern52 is the Matérn covariance with smoothness ν = 5/2:
//
//	k(r) = σ²·(1 + √5 r/ℓ + 5r²/(3ℓ²))·exp(−√5 r/ℓ)
//
// The paper's choice ("the GP model with the Matern covariance kernel").
type Matern52 struct {
	Variance    float64 // σ², signal variance
	LengthScale float64 // ℓ > 0
}

// Eval returns the Matérn-5/2 covariance between x and y.
func (k Matern52) Eval(x, y []float64) float64 {
	r := math.Sqrt(mat.SqDist(x, y)) / k.LengthScale
	s := math.Sqrt(5) * r
	return k.Variance * (1 + s + 5*r*r/3) * math.Exp(-s)
}

func (k Matern52) String() string {
	return fmt.Sprintf("Matern52(var=%.4g, len=%.4g)", k.Variance, k.LengthScale)
}

// Matern32 is the Matérn covariance with ν = 3/2:
//
//	k(r) = σ²·(1 + √3 r/ℓ)·exp(−√3 r/ℓ)
type Matern32 struct {
	Variance    float64
	LengthScale float64
}

// Eval returns the Matérn-3/2 covariance between x and y.
func (k Matern32) Eval(x, y []float64) float64 {
	r := math.Sqrt(mat.SqDist(x, y)) / k.LengthScale
	s := math.Sqrt(3) * r
	return k.Variance * (1 + s) * math.Exp(-s)
}

func (k Matern32) String() string {
	return fmt.Sprintf("Matern32(var=%.4g, len=%.4g)", k.Variance, k.LengthScale)
}

// RBF is the squared-exponential covariance k(r) = σ²·exp(−r²/(2ℓ²)).
type RBF struct {
	Variance    float64
	LengthScale float64
}

// Eval returns the RBF covariance between x and y.
func (k RBF) Eval(x, y []float64) float64 {
	return k.Variance * math.Exp(-mat.SqDist(x, y)/(2*k.LengthScale*k.LengthScale))
}

func (k RBF) String() string {
	return fmt.Sprintf("RBF(var=%.4g, len=%.4g)", k.Variance, k.LengthScale)
}

// gram builds the n x n Gram matrix K[i,j] = k(xs[i], xs[j]) + noise·δij.
func gram(k Kernel, xs [][]float64, noise float64) *mat.Matrix {
	n := len(xs)
	g := mat.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := k.Eval(xs[i], xs[j])
			g.Set(i, j, v)
			g.Set(j, i, v)
		}
		g.Add(i, i, noise)
	}
	return g
}

// crossCov returns the vector [k(x, xs[0]), ..., k(x, xs[n-1])].
func crossCov(k Kernel, x []float64, xs [][]float64) []float64 {
	out := make([]float64, len(xs))
	for i, xi := range xs {
		out[i] = k.Eval(x, xi)
	}
	return out
}
