// Package gp implements Gaussian process regression from scratch: Matérn
// and RBF covariance kernels, exact posterior inference via Cholesky
// factorization, log marginal likelihood, and a derivative-free
// hyperparameter search.
//
// This is the surrogate model of AuTraScale (paper §III-E): the paper uses
// a Gaussian process with a Matérn covariance kernel because it makes no
// prior assumption about the shape of the parallelism→score relationship
// and extrapolates better than, e.g., random forests.
package gp

import (
	"fmt"
	"math"

	"autrascale/internal/mat"
)

// Kernel is a positive-definite covariance function over ℝⁿ.
type Kernel interface {
	// Eval returns k(x, y).
	Eval(x, y []float64) float64
	// String describes the kernel and its hyperparameters.
	String() string
}

// RadialKernel is a stationary kernel whose value depends only on the
// squared distance ‖x−y‖². All built-in kernels implement it; gram and the
// hyperparameter grid search use it to evaluate many kernels over one
// precomputed distance matrix instead of recomputing pairwise distances
// per hyperparameter candidate.
type RadialKernel interface {
	Kernel
	// EvalDist2 returns k(x, y) for ‖x−y‖² = d2.
	EvalDist2(d2 float64) float64
}

// Matern52 is the Matérn covariance with smoothness ν = 5/2:
//
//	k(r) = σ²·(1 + √5 r/ℓ + 5r²/(3ℓ²))·exp(−√5 r/ℓ)
//
// The paper's choice ("the GP model with the Matern covariance kernel").
type Matern52 struct {
	Variance    float64 // σ², signal variance
	LengthScale float64 // ℓ > 0
}

// Eval returns the Matérn-5/2 covariance between x and y.
func (k Matern52) Eval(x, y []float64) float64 {
	return k.EvalDist2(mat.SqDist(x, y))
}

// EvalDist2 returns the covariance at squared distance d2.
func (k Matern52) EvalDist2(d2 float64) float64 {
	r := math.Sqrt(d2) / k.LengthScale
	s := math.Sqrt(5) * r
	return k.Variance * (1 + s + 5*r*r/3) * math.Exp(-s)
}

func (k Matern52) String() string {
	return fmt.Sprintf("Matern52(var=%.4g, len=%.4g)", k.Variance, k.LengthScale)
}

// Matern32 is the Matérn covariance with ν = 3/2:
//
//	k(r) = σ²·(1 + √3 r/ℓ)·exp(−√3 r/ℓ)
type Matern32 struct {
	Variance    float64
	LengthScale float64
}

// Eval returns the Matérn-3/2 covariance between x and y.
func (k Matern32) Eval(x, y []float64) float64 {
	return k.EvalDist2(mat.SqDist(x, y))
}

// EvalDist2 returns the covariance at squared distance d2.
func (k Matern32) EvalDist2(d2 float64) float64 {
	r := math.Sqrt(d2) / k.LengthScale
	s := math.Sqrt(3) * r
	return k.Variance * (1 + s) * math.Exp(-s)
}

func (k Matern32) String() string {
	return fmt.Sprintf("Matern32(var=%.4g, len=%.4g)", k.Variance, k.LengthScale)
}

// RBF is the squared-exponential covariance k(r) = σ²·exp(−r²/(2ℓ²)).
type RBF struct {
	Variance    float64
	LengthScale float64
}

// Eval returns the RBF covariance between x and y.
func (k RBF) Eval(x, y []float64) float64 {
	return k.EvalDist2(mat.SqDist(x, y))
}

// EvalDist2 returns the covariance at squared distance d2.
func (k RBF) EvalDist2(d2 float64) float64 {
	return k.Variance * math.Exp(-d2/(2*k.LengthScale*k.LengthScale))
}

func (k RBF) String() string {
	return fmt.Sprintf("RBF(var=%.4g, len=%.4g)", k.Variance, k.LengthScale)
}

// gramLower builds the Gram matrix K[i,j] = k(xs[i], xs[j]) + noise·δij,
// filling only the lower triangle (including the diagonal): its sole
// consumer is the Cholesky factorization, which reads nothing above the
// diagonal, so the symmetric half of the kernel evaluations is skipped.
func gramLower(k Kernel, xs [][]float64, noise float64) *mat.Matrix {
	n := len(xs)
	g := mat.NewMatrix(n, n)
	fill := func(eval func(x, y []float64) float64) {
		for i := 0; i < n; i++ {
			gr, xi := g.RawRow(i), xs[i]
			for j := 0; j <= i; j++ {
				gr[j] = eval(xi, xs[j])
			}
			gr[i] += noise
		}
	}
	// Concrete-type loops let the kernel inline (see crossCovInto).
	switch kk := k.(type) {
	case Matern52:
		fill(func(x, y []float64) float64 { return kk.EvalDist2(mat.SqDist(x, y)) })
	case Matern32:
		fill(func(x, y []float64) float64 { return kk.EvalDist2(mat.SqDist(x, y)) })
	case RBF:
		fill(func(x, y []float64) float64 { return kk.EvalDist2(mat.SqDist(x, y)) })
	default:
		fill(k.Eval)
	}
	return g
}

// gramFromDist2 fills the lower triangle of the preallocated n x n matrix
// g with K[i,j] = k(d2[i,j]) + noise·δij from a (lower-triangular)
// squared-distance matrix, reusing g's storage across hyperparameter
// candidates. Like gramLower, the output feeds only lower-triangle
// consumers.
func gramFromDist2(g *mat.Matrix, k RadialKernel, d2 *mat.Matrix, noise float64) {
	n := d2.Rows()
	fill := func(eval func(float64) float64) {
		for i := 0; i < n; i++ {
			gr, dr := g.RawRow(i), d2.RawRow(i)
			for j := 0; j <= i; j++ {
				gr[j] = eval(dr[j])
			}
			gr[i] += noise
		}
	}
	// Concrete-type loops let EvalDist2 inline (see crossCovInto).
	switch kk := k.(type) {
	case Matern52:
		fill(kk.EvalDist2)
	case Matern32:
		fill(kk.EvalDist2)
	case RBF:
		fill(kk.EvalDist2)
	default:
		fill(k.EvalDist2)
	}
}

// dist2Matrix returns the pairwise squared distances, filled in the lower
// triangle only (the diagonal is zero; upper entries stay zero).
func dist2Matrix(xs [][]float64) *mat.Matrix {
	n := len(xs)
	d2 := mat.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		dr, xi := d2.RawRow(i), xs[i]
		for j := 0; j < i; j++ {
			dr[j] = mat.SqDist(xi, xs[j])
		}
	}
	return d2
}

// crossCov returns the vector [k(x, xs[0]), ..., k(x, xs[n-1])].
func crossCov(k Kernel, x []float64, xs [][]float64) []float64 {
	return crossCovInto(make([]float64, len(xs)), k, x, xs)
}

// crossCovInto fills dst (length len(xs)) with [k(x, xs[i])]ᵢ without
// allocating. The built-in kernels get concrete-type loops so EvalDist2
// inlines — prediction spends most of its time here, and the dynamic
// dispatch per training point is measurable on the acquisition sweep.
func crossCovInto(dst []float64, k Kernel, x []float64, xs [][]float64) []float64 {
	switch kk := k.(type) {
	case Matern52:
		for i, xi := range xs {
			dst[i] = kk.EvalDist2(mat.SqDist(x, xi))
		}
	case Matern32:
		for i, xi := range xs {
			dst[i] = kk.EvalDist2(mat.SqDist(x, xi))
		}
	case RBF:
		for i, xi := range xs {
			dst[i] = kk.EvalDist2(mat.SqDist(x, xi))
		}
	default:
		for i, xi := range xs {
			dst[i] = k.Eval(x, xi)
		}
	}
	return dst
}
