package gp

import (
	"math"
	"testing"
	"testing/quick"

	"autrascale/internal/stat"
)

func TestKernelBasics(t *testing.T) {
	kernels := []Kernel{
		Matern52{Variance: 2, LengthScale: 1.5},
		Matern32{Variance: 2, LengthScale: 1.5},
		RBF{Variance: 2, LengthScale: 1.5},
	}
	x := []float64{1, 2}
	y := []float64{3, -1}
	for _, k := range kernels {
		// k(x,x) = variance.
		if got := k.Eval(x, x); math.Abs(got-2) > 1e-12 {
			t.Fatalf("%s: k(x,x) = %v, want 2", k, got)
		}
		// Symmetry.
		if k.Eval(x, y) != k.Eval(y, x) {
			t.Fatalf("%s: kernel not symmetric", k)
		}
		// Positivity and bounded by variance.
		v := k.Eval(x, y)
		if v <= 0 || v > 2 {
			t.Fatalf("%s: k(x,y) = %v out of (0, variance]", k, v)
		}
		if k.String() == "" {
			t.Fatalf("empty String for %T", k)
		}
	}
}

// Property: kernel value decreases with distance (monotone radial decay).
func TestKernelMonotoneDecay(t *testing.T) {
	f := func(seed uint64) bool {
		r := stat.NewRNG(seed)
		d1 := r.Float64() * 5
		d2 := d1 + r.Float64()*5 + 1e-9
		for _, k := range []Kernel{
			Matern52{Variance: 1, LengthScale: 1},
			Matern32{Variance: 1, LengthScale: 1},
			RBF{Variance: 1, LengthScale: 1},
		} {
			near := k.Eval([]float64{0}, []float64{d1})
			far := k.Eval([]float64{0}, []float64{d2})
			if far >= near {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFitValidation(t *testing.T) {
	r := New(Matern52{Variance: 1, LengthScale: 1}, 1e-6)
	if err := r.Fit(nil, nil); err != ErrNoData {
		t.Fatalf("Fit(nil) err = %v", err)
	}
	if err := r.Fit([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("expected length-mismatch error")
	}
	if err := r.Fit([][]float64{{1}, {1, 2}}, []float64{1, 2}); err == nil {
		t.Fatal("expected dimension-mismatch error")
	}
	if _, _, err := r.Predict([]float64{0}); err != ErrNoData {
		t.Fatalf("Predict before Fit err = %v", err)
	}
	if r.PredictMean([]float64{0}) != 0 {
		t.Fatal("PredictMean before Fit should be 0")
	}
}

func TestNewPanicsOnBadNoise(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for noise <= 0")
		}
	}()
	New(RBF{Variance: 1, LengthScale: 1}, 0)
}

// Property: the posterior interpolates training points (low noise) and has
// near-zero variance there.
func TestPosteriorInterpolates(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stat.NewRNG(seed)
		n := 3 + rng.Intn(8)
		xs := make([][]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = []float64{float64(i) + rng.Float64()*0.2}
			ys[i] = math.Sin(xs[i][0]) + 2
		}
		r := New(Matern52{Variance: 1, LengthScale: 1}, 1e-8)
		if err := r.Fit(xs, ys); err != nil {
			return false
		}
		for i := range xs {
			m, v, err := r.Predict(xs[i])
			if err != nil {
				return false
			}
			if math.Abs(m-ys[i]) > 1e-3 || v > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPosteriorRevertsToMeanFarAway(t *testing.T) {
	xs := [][]float64{{0}, {1}, {2}}
	ys := []float64{5, 7, 6}
	r := New(Matern52{Variance: 1, LengthScale: 0.5}, 1e-6)
	if err := r.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	m, v, err := r.Predict([]float64{100})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m-6) > 1e-6 { // mean of targets
		t.Fatalf("far-field mean = %v, want ~6", m)
	}
	if math.Abs(v-1) > 1e-6 { // prior variance
		t.Fatalf("far-field variance = %v, want ~1", v)
	}
}

func TestPredictionAccuracyOnSmooth(t *testing.T) {
	// Fit sin over [0, 3] and check interpolation error at midpoints.
	var xs [][]float64
	var ys []float64
	for x := 0.0; x <= 3.0; x += 0.25 {
		xs = append(xs, []float64{x})
		ys = append(ys, math.Sin(x))
	}
	r := New(Matern52{Variance: 1, LengthScale: 1}, 1e-8)
	if err := r.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	for x := 0.1; x < 3.0; x += 0.2 {
		m, _, _ := r.Predict([]float64{x})
		if math.Abs(m-math.Sin(x)) > 0.01 {
			t.Fatalf("prediction at %v = %v, want %v", x, m, math.Sin(x))
		}
	}
}

func TestPredictStd(t *testing.T) {
	r := New(RBF{Variance: 4, LengthScale: 1}, 1e-6)
	if err := r.Fit([][]float64{{0}}, []float64{1}); err != nil {
		t.Fatal(err)
	}
	_, std, err := r.PredictStd([]float64{50})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(std-2) > 1e-6 {
		t.Fatalf("far-field std = %v, want 2", std)
	}
}

func TestLogMarginalLikelihood(t *testing.T) {
	r := New(RBF{Variance: 1, LengthScale: 1}, 1e-4)
	if _, err := r.LogMarginalLikelihood(); err != ErrNoData {
		t.Fatal("LML before fit should error")
	}
	xs := [][]float64{{0}, {1}, {2}, {3}}
	ys := []float64{0, 0.8, 0.9, 0.1}
	if err := r.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	lml, err := r.LogMarginalLikelihood()
	if err != nil || math.IsNaN(lml) || math.IsInf(lml, 0) {
		t.Fatalf("LML = %v, err = %v", lml, err)
	}
	// A wildly mis-scaled kernel should have lower LML.
	bad := New(RBF{Variance: 1e6, LengthScale: 1e-4}, 1e-4)
	if err := bad.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	badLML, _ := bad.LogMarginalLikelihood()
	if badLML >= lml {
		t.Fatalf("bad kernel LML %v should be below good kernel LML %v", badLML, lml)
	}
}

func TestFitAutoSelectsReasonableModel(t *testing.T) {
	var xs [][]float64
	var ys []float64
	for x := 0.0; x <= 10; x += 0.5 {
		xs = append(xs, []float64{x})
		ys = append(ys, 3*math.Sin(x/2)+5)
	}
	r, err := FitAuto(xs, ys, FitOptions{Family: FamilyMatern52})
	if err != nil {
		t.Fatal(err)
	}
	for x := 0.25; x < 10; x += 1.5 {
		m := r.PredictMean([]float64{x})
		want := 3*math.Sin(x/2) + 5
		if math.Abs(m-want) > 0.25 {
			t.Fatalf("FitAuto prediction at %v = %v, want %v", x, m, want)
		}
	}
}

func TestFitAutoEmptyInput(t *testing.T) {
	if _, err := FitAuto(nil, nil, FitOptions{}); err != ErrNoData {
		t.Fatalf("err = %v, want ErrNoData", err)
	}
}

func TestFitAutoConstantTargets(t *testing.T) {
	xs := [][]float64{{0}, {1}, {2}}
	ys := []float64{4, 4, 4}
	r, err := FitAuto(xs, ys, FitOptions{Family: FamilyRBF})
	if err != nil {
		t.Fatal(err)
	}
	if m := r.PredictMean([]float64{1.5}); math.Abs(m-4) > 1e-3 {
		t.Fatalf("constant-target mean = %v, want 4", m)
	}
}

func TestFitAutoFamilies(t *testing.T) {
	xs := [][]float64{{0}, {1}, {2}, {3}}
	ys := []float64{1, 2, 2, 1}
	for _, fam := range []KernelFamily{FamilyMatern52, FamilyMatern32, FamilyRBF} {
		r, err := FitAuto(xs, ys, FitOptions{Family: fam})
		if err != nil {
			t.Fatalf("family %d: %v", fam, err)
		}
		if r.NumData() != 4 {
			t.Fatalf("family %d: NumData = %d", fam, r.NumData())
		}
	}
}

func TestDuplicateInputsHandledByJitter(t *testing.T) {
	// Identical inputs make the Gram matrix singular at tiny noise; the
	// jittered Cholesky must still fit.
	xs := [][]float64{{1, 1}, {1, 1}, {2, 2}}
	ys := []float64{3, 3.01, 5}
	r := New(Matern52{Variance: 1, LengthScale: 1}, 1e-9)
	if err := r.Fit(xs, ys); err != nil {
		t.Fatalf("Fit with duplicates: %v", err)
	}
	m := r.PredictMean([]float64{1, 1})
	if math.Abs(m-3.005) > 0.05 {
		t.Fatalf("duplicate-input mean = %v, want ~3.005", m)
	}
}

func TestMultiDimensionalInputs(t *testing.T) {
	// f(x) = x0 + 2*x1 over a small grid.
	var xs [][]float64
	var ys []float64
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			xs = append(xs, []float64{float64(i), float64(j)})
			ys = append(ys, float64(i)+2*float64(j))
		}
	}
	r, err := FitAuto(xs, ys, FitOptions{Family: FamilyMatern52})
	if err != nil {
		t.Fatal(err)
	}
	m := r.PredictMean([]float64{2.5, 2.5})
	if math.Abs(m-7.5) > 0.3 {
		t.Fatalf("2-D prediction = %v, want ~7.5", m)
	}
}

func TestTrainingDataRoundTrip(t *testing.T) {
	xs := [][]float64{{0}, {1}, {2}}
	ys := []float64{5, 7, 6}
	r := New(Matern52{Variance: 1, LengthScale: 1}, 1e-6)
	if err := r.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	gx, gy := r.TrainingData()
	if len(gx) != 3 || len(gy) != 3 {
		t.Fatal("wrong sizes")
	}
	for i := range ys {
		if math.Abs(gy[i]-ys[i]) > 1e-12 {
			t.Fatalf("target %d = %v, want %v (de-centering failed)", i, gy[i], ys[i])
		}
		if gx[i][0] != xs[i][0] {
			t.Fatalf("input %d = %v", i, gx[i])
		}
	}
	// Mutating the copies must not affect the model.
	gx[0][0] = 999
	gy[0] = 999
	if m := r.PredictMean([]float64{0}); math.Abs(m-5) > 0.01 {
		t.Fatalf("model corrupted by mutation: %v", m)
	}
}

// Property: a model grown with Append matches a from-scratch Fit on the
// full data to 1e-9 — factor, mean, and posterior predictions.
func TestAppendMatchesFullFit(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stat.NewRNG(seed)
		n := 4 + rng.Intn(12)
		dim := 1 + rng.Intn(3)
		xs := make([][]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = make([]float64, dim)
			for d := range xs[i] {
				xs[i][d] = rng.Float64() * 10
			}
			ys[i] = math.Sin(xs[i][0]) + rng.Float64()*0.1
		}
		kern := Matern52{Variance: 1, LengthScale: 2}
		full := New(kern, 1e-4)
		if err := full.Fit(xs, ys); err != nil {
			return false
		}
		inc := New(kern, 1e-4)
		m := 1 + rng.Intn(n-1)
		if err := inc.Fit(xs[:m], ys[:m]); err != nil {
			return false
		}
		for i := m; i < n; i++ {
			if err := inc.Append(xs[i], ys[i]); err != nil {
				return false
			}
		}
		if inc.NumData() != full.NumData() {
			return false
		}
		for trial := 0; trial < 5; trial++ {
			q := make([]float64, dim)
			for d := range q {
				q[d] = rng.Float64() * 10
			}
			m1, v1, err1 := full.Predict(q)
			m2, v2, err2 := inc.Predict(q)
			if err1 != nil || err2 != nil {
				return false
			}
			if math.Abs(m1-m2) > 1e-9 || math.Abs(v1-v2) > 1e-9 {
				return false
			}
		}
		l1, _ := full.LogMarginalLikelihood()
		l2, _ := inc.LogMarginalLikelihood()
		return math.Abs(l1-l2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAppendValidation(t *testing.T) {
	r := New(Matern52{Variance: 1, LengthScale: 1}, 1e-4)
	if err := r.Append([]float64{1}, 1); err != ErrNoData {
		t.Fatalf("Append before Fit err = %v, want ErrNoData", err)
	}
	if err := r.Fit([][]float64{{0}, {1}}, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := r.Append([]float64{1, 2}, 3); err == nil {
		t.Fatal("dimension mismatch should error")
	}
	if r.NumData() != 2 {
		t.Fatalf("failed Append changed NumData to %d", r.NumData())
	}
	if err := r.Append([]float64{2}, 3); err != nil {
		t.Fatal(err)
	}
	if r.NumData() != 3 {
		t.Fatalf("NumData = %d, want 3", r.NumData())
	}
}

func TestPredictBatchMatchesPredict(t *testing.T) {
	rng := stat.NewRNG(11)
	xs := make([][]float64, 12)
	ys := make([]float64, 12)
	for i := range xs {
		xs[i] = []float64{rng.Float64() * 5, rng.Float64() * 5}
		ys[i] = rng.Float64()
	}
	r, err := FitAuto(xs, ys, FitOptions{Family: FamilyMatern52})
	if err != nil {
		t.Fatal(err)
	}
	queries := make([][]float64, 20)
	for i := range queries {
		queries[i] = []float64{rng.Float64() * 5, rng.Float64() * 5}
	}
	means := make([]float64, len(queries))
	variances := make([]float64, len(queries))
	var ws Workspace
	if err := r.PredictBatch(&ws, queries, means, variances); err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		m, v, err := r.Predict(q)
		if err != nil {
			t.Fatal(err)
		}
		if m != means[i] || v != variances[i] {
			t.Fatalf("batch[%d] = (%v, %v), Predict = (%v, %v)", i, means[i], variances[i], m, v)
		}
	}
	// Mean-only batch skips the variance solve but matches means.
	meansOnly := make([]float64, len(queries))
	if err := r.PredictBatch(&ws, queries, meansOnly, nil); err != nil {
		t.Fatal(err)
	}
	for i := range queries {
		if meansOnly[i] != means[i] {
			t.Fatalf("mean-only batch[%d] = %v, want %v", i, meansOnly[i], means[i])
		}
	}
	// Steady-state batch prediction must not allocate.
	allocs := testing.AllocsPerRun(20, func() {
		if err := r.PredictBatch(&ws, queries, means, variances); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("PredictBatch allocs/op = %v, want 0", allocs)
	}
}

func TestPredictBatchValidation(t *testing.T) {
	r := New(RBF{Variance: 1, LengthScale: 1}, 1e-4)
	var ws Workspace
	if err := r.PredictBatch(&ws, [][]float64{{1}}, []float64{0}, nil); err != ErrNoData {
		t.Fatalf("unfitted PredictBatch err = %v", err)
	}
	if err := r.Fit([][]float64{{0}, {1}}, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := r.PredictBatch(&ws, [][]float64{{1}, {2}}, []float64{0}, nil); err == nil {
		t.Fatal("short means should error")
	}
	if err := r.PredictBatch(&ws, [][]float64{{1}, {2}}, nil, []float64{0}); err == nil {
		t.Fatal("short variances should error")
	}
}

// FitAuto's grid search over the shared distance matrix must agree with
// fitting the winning kernel directly on the raw inputs.
func TestFitAutoMatchesDirectFit(t *testing.T) {
	rng := stat.NewRNG(17)
	xs := make([][]float64, 15)
	ys := make([]float64, 15)
	for i := range xs {
		xs[i] = []float64{rng.Float64() * 8, rng.Float64() * 8}
		ys[i] = math.Sin(xs[i][0]) * math.Cos(xs[i][1])
	}
	auto, err := FitAuto(xs, ys, FitOptions{Family: FamilyMatern52})
	if err != nil {
		t.Fatal(err)
	}
	direct := New(auto.Kernel(), auto.Noise())
	if err := direct.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		q := []float64{rng.Float64() * 8, rng.Float64() * 8}
		m1, v1, _ := auto.Predict(q)
		m2, v2, _ := direct.Predict(q)
		if math.Abs(m1-m2) > 1e-9 || math.Abs(v1-v2) > 1e-9 {
			t.Fatalf("FitAuto model diverges from direct fit: (%v,%v) vs (%v,%v)", m1, v1, m2, v2)
		}
	}
}
