package flink

import (
	"math"
	"testing"
	"testing/quick"

	"autrascale/internal/cluster"
	"autrascale/internal/dataflow"
	"autrascale/internal/kafka"
	"autrascale/internal/metrics"
	"autrascale/internal/stat"
)

// testGraph builds a simple 3-operator chain: source (1000 rps/inst) ->
// map (500 rps/inst) -> sink (800 rps/inst), all selectivity 1.
func testGraph(t testing.TB) *dataflow.Graph {
	t.Helper()
	g := dataflow.NewGraph("test-job")
	ops := []dataflow.Operator{
		{Name: "source", Kind: dataflow.KindSource, Selectivity: 1,
			Profile: dataflow.Profile{BaseRatePerInstance: 1000, FixedLatencyMS: 5, QueueScaleMS: 10, CPUPerInstance: 1, MemPerInstanceMB: 256}},
		{Name: "map", Kind: dataflow.KindTransform, Selectivity: 1,
			Profile: dataflow.Profile{BaseRatePerInstance: 500, SyncCost: 0.05, FixedLatencyMS: 10, QueueScaleMS: 20, CommCostPerParallelism: 1, CPUPerInstance: 1, MemPerInstanceMB: 256}},
		{Name: "sink", Kind: dataflow.KindSink, Selectivity: 0,
			Profile: dataflow.Profile{BaseRatePerInstance: 800, FixedLatencyMS: 5, QueueScaleMS: 10, CPUPerInstance: 1, MemPerInstanceMB: 256}},
	}
	for _, op := range ops {
		if err := g.AddOperator(op); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Connect("source", "map"); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect("map", "sink"); err != nil {
		t.Fatal(err)
	}
	return g
}

func testCluster(t testing.TB) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.Config{
		Machines: []cluster.Machine{{Name: "m1", Cores: 16, MemMB: 32768}, {Name: "m2", Cores: 16, MemMB: 32768}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func newEngine(t testing.TB, rate float64, par dataflow.ParallelismVector) *Engine {
	t.Helper()
	topic, err := kafka.NewTopic("in", 8, kafka.ConstantRate(rate))
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{
		Graph:              testGraph(t),
		Cluster:            testCluster(t),
		Topic:              topic,
		Seed:               1,
		NoNoise:            true,
		InitialParallelism: par,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("expected error for missing components")
	}
	topic, _ := kafka.NewTopic("in", 1, kafka.ConstantRate(1))
	// Two sources are rejected.
	g := dataflow.NewGraph("two-src")
	p := dataflow.Profile{BaseRatePerInstance: 100, CPUPerInstance: 1}
	_ = g.AddOperator(dataflow.Operator{Name: "s1", Selectivity: 1, Profile: p})
	_ = g.AddOperator(dataflow.Operator{Name: "s2", Selectivity: 1, Profile: p})
	_ = g.AddOperator(dataflow.Operator{Name: "x", Selectivity: 0, Profile: p})
	_ = g.Connect("s1", "x")
	_ = g.Connect("s2", "x")
	if _, err := New(Config{Graph: g, Cluster: testCluster(t), Topic: topic}); err == nil {
		t.Fatal("expected error for two sources")
	}
	// Bad initial parallelism is rejected.
	if _, err := New(Config{Graph: testGraph(t), Cluster: testCluster(t), Topic: topic,
		InitialParallelism: dataflow.ParallelismVector{0, 1, 1}}); err == nil {
		t.Fatal("expected error for parallelism 0")
	}
}

func TestDefaultsApplied(t *testing.T) {
	topic, _ := kafka.NewTopic("in", 1, kafka.ConstantRate(100))
	e, err := New(Config{Graph: testGraph(t), Cluster: testCluster(t), Topic: topic})
	if err != nil {
		t.Fatal(err)
	}
	if !e.Parallelism().Equal(dataflow.Uniform(3, 1)) {
		t.Fatalf("default parallelism = %v", e.Parallelism())
	}
	if e.JobName() != "test-job" {
		t.Fatalf("JobName = %q", e.JobName())
	}
}

func TestThroughputMatchesBottleneck(t *testing.T) {
	// map at k=1 is the bottleneck: 500 rps.
	e := newEngine(t, 2000, dataflow.ParallelismVector{1, 1, 1})
	m := e.RunAndMeasure(10, 60)
	if math.Abs(m.ThroughputRPS-500) > 1 {
		t.Fatalf("throughput = %v, want ~500 (map bottleneck)", m.ThroughputRPS)
	}
	// Lag should be growing: input 2000, processed 500.
	if m.LagRecords <= 0 {
		t.Fatal("lag should accumulate when under-provisioned")
	}
	// Event latency must exceed processing latency when lag exists.
	if m.EventLatMS <= m.ProcLatencyMS {
		t.Fatalf("event latency %v should exceed processing latency %v", m.EventLatMS, m.ProcLatencyMS)
	}
}

func TestKeepsUpWhenProvisioned(t *testing.T) {
	// map needs ceil(2000/500·(1+σΔ)) ≈ 5 instances; give it 6.
	e := newEngine(t, 2000, dataflow.ParallelismVector{3, 6, 3})
	m := e.RunAndMeasure(10, 60)
	if math.Abs(m.ThroughputRPS-2000) > 1 {
		t.Fatalf("throughput = %v, want 2000", m.ThroughputRPS)
	}
	if m.LagRecords > 1 {
		t.Fatalf("lag = %v, want ~0", m.LagRecords)
	}
}

func TestNonLinearScaling(t *testing.T) {
	// Observation 2.1: doubling map's parallelism must yield less than 2x
	// its total capacity because of SyncCost.
	e1 := newEngine(t, 1e9, dataflow.ParallelismVector{8, 1, 8})
	m1 := e1.RunAndMeasure(5, 30)
	e2 := newEngine(t, 1e9, dataflow.ParallelismVector{8, 2, 8})
	m2 := e2.RunAndMeasure(5, 30)
	t1 := m1.ThroughputRPS
	t2 := m2.ThroughputRPS
	if t2 <= t1 {
		t.Fatalf("throughput should increase with parallelism: %v -> %v", t1, t2)
	}
	if t2 >= 2*t1 {
		t.Fatalf("scaling should be sublinear: %v -> %v", t1, t2)
	}
}

func TestLatencyUpturnAtHighParallelism(t *testing.T) {
	// Observation 2.2: CommCostPerParallelism on map eventually raises
	// latency as parallelism grows far beyond need.
	rate := 400.0
	lowPar := newEngine(t, rate, dataflow.ParallelismVector{1, 2, 1})
	mLow := lowPar.RunAndMeasure(10, 60)
	highPar := newEngine(t, rate, dataflow.ParallelismVector{1, 30, 1})
	mHigh := highPar.RunAndMeasure(10, 60)
	if mHigh.ProcLatencyMS <= mLow.ProcLatencyMS {
		t.Fatalf("very high parallelism should hurt latency: low=%v high=%v",
			mLow.ProcLatencyMS, mHigh.ProcLatencyMS)
	}
}

func TestTrueVsObservedRates(t *testing.T) {
	// Over-provisioned: observed rate per instance must be well below the
	// true (busy-time) rate; this is the core of the paper's metric
	// argument.
	e := newEngine(t, 500, dataflow.ParallelismVector{2, 4, 2})
	m := e.RunAndMeasure(10, 60)
	mapIdx := 1
	if m.ObservedRatePerInstance[mapIdx] >= m.TrueRatePerInstance[mapIdx]*0.5 {
		t.Fatalf("observed %v should be well below true %v when idle",
			m.ObservedRatePerInstance[mapIdx], m.TrueRatePerInstance[mapIdx])
	}
	// Saturated: observed ≈ true.
	e2 := newEngine(t, 1e9, dataflow.ParallelismVector{2, 2, 2})
	m2 := e2.RunAndMeasure(10, 60)
	ratio := m2.ObservedRatePerInstance[mapIdx] / m2.TrueRatePerInstance[mapIdx]
	if ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("saturated observed/true = %v, want ~1", ratio)
	}
}

func TestExternalCap(t *testing.T) {
	g := dataflow.NewGraph("capped")
	p := dataflow.Profile{BaseRatePerInstance: 1000, CPUPerInstance: 1}
	capped := dataflow.Profile{BaseRatePerInstance: 1000, ExternalCapRPS: 300, CPUPerInstance: 1}
	_ = g.AddOperator(dataflow.Operator{Name: "src", Selectivity: 1, Profile: p})
	_ = g.AddOperator(dataflow.Operator{Name: "join", Selectivity: 0, Profile: capped})
	_ = g.Connect("src", "join")
	topic, _ := kafka.NewTopic("in", 1, kafka.ConstantRate(5000))
	e, err := New(Config{Graph: g, Cluster: testCluster(t), Topic: topic, NoNoise: true,
		InitialParallelism: dataflow.ParallelismVector{8, 8}})
	if err != nil {
		t.Fatal(err)
	}
	m := e.RunAndMeasure(10, 60)
	if m.ThroughputRPS > 305 {
		t.Fatalf("throughput = %v, should be capped at 300 regardless of parallelism", m.ThroughputRPS)
	}
}

func TestRestartDowntime(t *testing.T) {
	e := newEngine(t, 1000, dataflow.ParallelismVector{2, 3, 2})
	e.Run(30)
	lagBefore := e.Topic().Lag()
	if err := e.SetParallelism(dataflow.ParallelismVector{2, 4, 2}); err != nil {
		t.Fatal(err)
	}
	if e.Restarts() != 1 {
		t.Fatalf("Restarts = %d", e.Restarts())
	}
	// During downtime nothing is consumed → lag grows by ~rate·downtime.
	e.Run(10)
	lagDuring := e.Topic().Lag()
	if lagDuring < lagBefore+9000 {
		t.Fatalf("lag during restart = %v, want >= %v", lagDuring, lagBefore+9000)
	}
	// Afterwards the larger config catches up.
	m := e.RunAndMeasure(30, 120)
	if m.LagRecords > lagDuring {
		t.Fatalf("lag should shrink after restart: %v -> %v", lagDuring, m.LagRecords)
	}
}

func TestSetParallelismNoChangeNoRestart(t *testing.T) {
	e := newEngine(t, 1000, dataflow.ParallelismVector{2, 3, 2})
	if err := e.SetParallelism(dataflow.ParallelismVector{2, 3, 2}); err != nil {
		t.Fatal(err)
	}
	if e.Restarts() != 0 {
		t.Fatal("identical config should not restart")
	}
	if err := e.SetParallelism(dataflow.ParallelismVector{2, 3}); err == nil {
		t.Fatal("wrong-length parallelism should error")
	}
	if err := e.SetParallelism(dataflow.ParallelismVector{2, 3, 9999}); err == nil {
		t.Fatal("over-max parallelism should error")
	}
}

func TestMeasureEmptyWindow(t *testing.T) {
	e := newEngine(t, 1000, nil)
	m := e.Measure()
	if m.WindowSec != 0 || m.ThroughputRPS != 0 {
		t.Fatalf("empty measure = %+v", m)
	}
}

func TestMetricsRecorded(t *testing.T) {
	topic, _ := kafka.NewTopic("in", 8, kafka.ConstantRate(1000))
	store := metrics.NewStore()
	e, err := New(Config{Graph: testGraph(t), Cluster: testCluster(t), Topic: topic,
		Store: store, NoNoise: true, InitialParallelism: dataflow.ParallelismVector{2, 3, 2}})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(30)
	agg := metrics.NewAggregator(store)
	mean, n := agg.OperatorMean(metrics.MetricTrueProcessingRate, "test-job", "map", 0, 30)
	if n == 0 || mean <= 0 {
		t.Fatalf("true rate not recorded: %v, %d", mean, n)
	}
	if _, ok := agg.JobLatest(metrics.MetricThroughput, "test-job"); !ok {
		t.Fatal("throughput not recorded")
	}
	if _, ok := agg.JobLatest(metrics.MetricKafkaLag, "test-job"); !ok {
		t.Fatal("lag not recorded")
	}
}

// Property: flow conservation — produced = consumed + lag at all times,
// and throughput never exceeds the input availability.
func TestFlowConservationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := stat.NewRNG(seed)
		rate := 200 + r.Float64()*3000
		par := dataflow.ParallelismVector{1 + r.Intn(4), 1 + r.Intn(8), 1 + r.Intn(4)}
		topic, err := kafka.NewTopic("in", 4, kafka.ConstantRate(rate))
		if err != nil {
			return false
		}
		e, err := New(Config{Graph: testGraph(t), Cluster: testCluster(t), Topic: topic,
			Seed: seed, InitialParallelism: par})
		if err != nil {
			return false
		}
		for i := 0; i < 120; i++ {
			e.Tick()
			tp := e.Topic()
			if math.Abs(tp.Produced()-tp.Consumed()-tp.Lag()) > 1e-6 {
				return false
			}
			if tp.Lag() < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminismWithSeed(t *testing.T) {
	run := func() Measurement {
		topic, _ := kafka.NewTopic("in", 8, kafka.ConstantRate(1500))
		e, err := New(Config{Graph: testGraph(t), Cluster: testCluster(t), Topic: topic,
			Seed: 99, InitialParallelism: dataflow.ParallelismVector{2, 4, 2}})
		if err != nil {
			t.Fatal(err)
		}
		return e.RunAndMeasure(10, 60)
	}
	m1, m2 := run(), run()
	if m1.ThroughputRPS != m2.ThroughputRPS || m1.ProcLatencyMS != m2.ProcLatencyMS {
		t.Fatal("same seed must reproduce identical measurements")
	}
}

func TestInterferenceSlowsOversubscribed(t *testing.T) {
	// Interference is utilization-weighted: only *busy* instances contend
	// for cores. A saturated operator with 40 instances on a 32-core
	// cluster must run slower per instance than the same operator with 8
	// instances; an idle over-provisioned fleet must not.
	build := func(heavyK int) Measurement {
		g := dataflow.NewGraph("hot")
		_ = g.AddOperator(dataflow.Operator{Name: "src", Kind: dataflow.KindSource, Selectivity: 1,
			Profile: dataflow.Profile{BaseRatePerInstance: 10000, CPUPerInstance: 1}})
		_ = g.AddOperator(dataflow.Operator{Name: "heavy", Kind: dataflow.KindSink, Selectivity: 0,
			Profile: dataflow.Profile{BaseRatePerInstance: 100, CPUPerInstance: 2}})
		_ = g.Connect("src", "heavy")
		topic, err := kafka.NewTopic("in", 4, kafka.ConstantRate(1e9))
		if err != nil {
			t.Fatal(err)
		}
		e, err := New(Config{Graph: g, Cluster: testCluster(t), Topic: topic, NoNoise: true,
			InitialParallelism: dataflow.ParallelismVector{2, heavyK}})
		if err != nil {
			t.Fatal(err)
		}
		return e.RunAndMeasure(10, 30)
	}
	small := build(8) // ~18 busy core-equivalents < 32 cores
	big := build(30)  // ~62 busy core-equivalents > 32 cores
	if big.TrueRatePerInstance[1] >= small.TrueRatePerInstance[1]*0.95 {
		t.Fatalf("busy oversubscription should reduce per-instance rate: %v vs %v",
			big.TrueRatePerInstance[1], small.TrueRatePerInstance[1])
	}
	// Idle over-provisioning (tiny input) must NOT trigger interference.
	gIdle := func(heavyK int) Measurement {
		g := dataflow.NewGraph("cold")
		_ = g.AddOperator(dataflow.Operator{Name: "src", Kind: dataflow.KindSource, Selectivity: 1,
			Profile: dataflow.Profile{BaseRatePerInstance: 10000, CPUPerInstance: 1}})
		_ = g.AddOperator(dataflow.Operator{Name: "heavy", Kind: dataflow.KindSink, Selectivity: 0,
			Profile: dataflow.Profile{BaseRatePerInstance: 100, CPUPerInstance: 2}})
		_ = g.Connect("src", "heavy")
		topic, _ := kafka.NewTopic("in", 4, kafka.ConstantRate(50))
		e, err := New(Config{Graph: g, Cluster: testCluster(t), Topic: topic, NoNoise: true,
			InitialParallelism: dataflow.ParallelismVector{2, heavyK}})
		if err != nil {
			t.Fatal(err)
		}
		return e.RunAndMeasure(10, 30)
	}
	idle := gIdle(30)
	if idle.TrueRatePerInstance[1] < 99 {
		t.Fatalf("idle instances must not interfere: per-instance rate %v", idle.TrueRatePerInstance[1])
	}
}

func TestLatencySamplesPresent(t *testing.T) {
	e := newEngine(t, 1000, dataflow.ParallelismVector{2, 3, 2})
	m := e.RunAndMeasure(5, 30)
	if len(m.LatencySamples) != 30 {
		t.Fatalf("samples = %d, want 30", len(m.LatencySamples))
	}
	for _, s := range m.LatencySamples {
		if s <= 0 {
			t.Fatalf("non-positive latency sample %v", s)
		}
	}
}

func TestMemAccounting(t *testing.T) {
	e := newEngine(t, 1000, dataflow.ParallelismVector{2, 3, 2})
	if got := e.MemUsedMB(); got != 7*256 {
		t.Fatalf("MemUsedMB = %v, want %v", got, 7*256)
	}
	m := e.RunAndMeasure(5, 20)
	if m.CPUUsedCores <= 0 || m.CPUUsedCores > 7 {
		t.Fatalf("CPUUsedCores = %v out of (0, 7]", m.CPUUsedCores)
	}
}

func TestSelectivityPropagation(t *testing.T) {
	// FlatMap with selectivity 2 doubles the arrival rate downstream.
	g := dataflow.NewGraph("sel")
	p := dataflow.Profile{BaseRatePerInstance: 10000, CPUPerInstance: 1}
	_ = g.AddOperator(dataflow.Operator{Name: "src", Selectivity: 2, Profile: p})
	_ = g.AddOperator(dataflow.Operator{Name: "sink", Selectivity: 0, Profile: p})
	_ = g.Connect("src", "sink")
	topic, _ := kafka.NewTopic("in", 1, kafka.ConstantRate(1000))
	e, err := New(Config{Graph: g, Cluster: testCluster(t), Topic: topic, NoNoise: true})
	if err != nil {
		t.Fatal(err)
	}
	m := e.RunAndMeasure(5, 30)
	if math.Abs(m.LambdaRPS[1]-2*m.ThroughputRPS) > 1 {
		t.Fatalf("sink lambda = %v, want 2x throughput %v", m.LambdaRPS[1], m.ThroughputRPS)
	}
}

func TestMachineFailover(t *testing.T) {
	e := newEngine(t, 1800, dataflow.ParallelismVector{3, 6, 3})
	healthy := e.MeasureSteady(15, 60)
	if healthy.ThroughputRPS < 1790 {
		t.Fatalf("healthy throughput = %v", healthy.ThroughputRPS)
	}
	if err := e.FailMachine("m1"); err != nil {
		t.Fatal(err)
	}
	if e.Restarts() != 1 {
		t.Fatal("failover should restart the job")
	}
	// With half the cores gone and 12 busy-ish instances on 16 cores the
	// job still roughly keeps up; push parallelism to force contention.
	if err := e.SetParallelism(dataflow.ParallelismVector{8, 16, 8}); err != nil {
		t.Fatal(err)
	}
	degraded := e.MeasureSteady(15, 60)
	recoveredErr := e.RecoverMachine("m1")
	if recoveredErr != nil {
		t.Fatal(recoveredErr)
	}
	recovered := e.MeasureSteady(15, 60)
	// Per-instance true rates under failure must be below the recovered
	// ones (oversubscription on the surviving machine).
	if degraded.TrueRatePerInstance[1] >= recovered.TrueRatePerInstance[1] {
		t.Fatalf("failure should depress per-instance rates: %v vs %v",
			degraded.TrueRatePerInstance[1], recovered.TrueRatePerInstance[1])
	}
	if err := e.FailMachine("ghost"); err == nil {
		t.Fatal("unknown machine should error")
	}
}
