package flink

import (
	"math"
	"testing"

	"autrascale/internal/dataflow"
	"autrascale/internal/kafka"
)

// diamondGraph builds src -> (left | right) -> join: the stream fans out
// to both branches (Flink-style broadcast to each successor) and the join
// receives both.
func diamondGraph(t testing.TB, leftSel, rightSel float64) *dataflow.Graph {
	t.Helper()
	g := dataflow.NewGraph("diamond")
	p := func(rate float64) dataflow.Profile {
		return dataflow.Profile{BaseRatePerInstance: rate, FixedLatencyMS: 5,
			QueueScaleMS: 1, CPUPerInstance: 1, MemPerInstanceMB: 128}
	}
	ops := []dataflow.Operator{
		{Name: "src", Kind: dataflow.KindSource, Selectivity: 1, Profile: p(5000)},
		{Name: "left", Kind: dataflow.KindTransform, Selectivity: leftSel, Profile: p(3000)},
		{Name: "right", Kind: dataflow.KindTransform, Selectivity: rightSel, Profile: p(3000)},
		{Name: "join", Kind: dataflow.KindSink, Selectivity: 0, Profile: p(4000)},
	}
	for _, op := range ops {
		if err := g.AddOperator(op); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]string{{"src", "left"}, {"src", "right"}, {"left", "join"}, {"right", "join"}} {
		if err := g.Connect(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestDiamondArrivalRates(t *testing.T) {
	// With selectivities 0.5 and 0.25, the join sees 0.75x the source
	// rate; both branches see the full source rate.
	g := diamondGraph(t, 0.5, 0.25)
	topic, err := kafka.NewTopic("in", 4, kafka.ConstantRate(1000))
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{Graph: g, Cluster: testCluster(t), Topic: topic, NoNoise: true,
		InitialParallelism: dataflow.ParallelismVector{1, 1, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	m := e.RunAndMeasure(10, 60)
	if math.Abs(m.ThroughputRPS-1000) > 1 {
		t.Fatalf("throughput = %v", m.ThroughputRPS)
	}
	left := g.OperatorIndex("left")
	right := g.OperatorIndex("right")
	join := g.OperatorIndex("join")
	if math.Abs(m.LambdaRPS[left]-1000) > 1 || math.Abs(m.LambdaRPS[right]-1000) > 1 {
		t.Fatalf("branch lambdas = %v / %v, want 1000 each", m.LambdaRPS[left], m.LambdaRPS[right])
	}
	if math.Abs(m.LambdaRPS[join]-750) > 1 {
		t.Fatalf("join lambda = %v, want 750", m.LambdaRPS[join])
	}
}

func TestDiamondBottleneckOnJoin(t *testing.T) {
	// Selectivity 1 on both branches doubles the join's arrivals: at
	// source rate r the join sees 2r, so its capacity (4000/inst) caps
	// the job at 2000 rps with everything at parallelism 1.
	g := diamondGraph(t, 1, 1)
	topic, err := kafka.NewTopic("in", 4, kafka.ConstantRate(1e9))
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{Graph: g, Cluster: testCluster(t), Topic: topic, NoNoise: true})
	if err != nil {
		t.Fatal(err)
	}
	m := e.RunAndMeasure(10, 60)
	if math.Abs(m.ThroughputRPS-2000) > 5 {
		t.Fatalf("diamond throughput = %v, want ~2000 (join-bound)", m.ThroughputRPS)
	}
	// Doubling the join's parallelism should roughly double throughput
	// (up to the branch capacity of 3000).
	if err := e.SetParallelism(dataflow.ParallelismVector{1, 1, 1, 2}); err != nil {
		t.Fatal(err)
	}
	m2 := e.MeasureSteady(15, 60)
	if m2.ThroughputRPS < 2900 {
		t.Fatalf("after join scale-up throughput = %v, want ~3000 (branch-bound)", m2.ThroughputRPS)
	}
}
