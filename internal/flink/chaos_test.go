package flink

import (
	"errors"
	"testing"

	"autrascale/internal/chaos"
	"autrascale/internal/dataflow"
	"autrascale/internal/kafka"
	"autrascale/internal/metrics"
	"autrascale/internal/trace"
)

func chaosEngine(t testing.TB, profile chaos.Profile, seed uint64, cfg func(*Config)) (*Engine, *metrics.Store) {
	t.Helper()
	topic, err := kafka.NewTopic("in", 8, kafka.ConstantRate(1000))
	if err != nil {
		t.Fatal(err)
	}
	store := metrics.NewStore()
	c := Config{
		Graph:   testGraph(t),
		Cluster: testCluster(t),
		Topic:   topic,
		Store:   store,
		NoNoise: true,
		Seed:    seed,
		Chaos:   chaos.New(profile, seed),
	}
	if cfg != nil {
		cfg(&c)
	}
	e, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	return e, store
}

// A rescale that keeps failing must retry with backoff (burning
// simulated time, counting retries) and eventually give up with
// ErrRescaleFailed, leaving the configuration unchanged.
func TestRescaleRetriesThenFails(t *testing.T) {
	tr := trace.New(64)
	e, store := chaosEngine(t, chaos.Profile{RescaleFailProb: 1}, 5, func(c *Config) {
		c.Tracer = tr
		c.RescaleMaxAttempts = 3
		c.RescaleBackoffSec = 4
	})
	before := e.Parallelism()
	t0 := e.Now()
	err := e.SetParallelism(dataflow.ParallelismVector{2, 3, 2})
	if !errors.Is(err, ErrRescaleFailed) {
		t.Fatalf("want ErrRescaleFailed, got %v", err)
	}
	if !e.Parallelism().Equal(before) {
		t.Fatalf("failed rescale must keep the last-known-good configuration, got %v", e.Parallelism())
	}
	if e.Restarts() != 0 {
		t.Fatalf("failed rescale must not restart the job, restarts=%d", e.Restarts())
	}
	// 3 attempts → 2 backoffs (4s + 8s) of simulated time.
	if got := e.Now() - t0; got != 12 {
		t.Fatalf("backoff should burn 12 simulated seconds, burned %v", got)
	}
	if got := store.Counter("rescale_retries", map[string]string{"job": "test-job"}).Value(); got != 3 {
		t.Fatalf("rescale_retries = %v, want 3 (one per failed attempt)", got)
	}
	attempts := 0
	for _, sp := range tr.Snapshot(0) {
		if sp.Name == "flink.rescale_attempt" {
			attempts++
		}
	}
	if attempts != 3 {
		t.Fatalf("want 3 rescale_attempt spans, got %d", attempts)
	}
}

// The deadline bounds total retry time even when the attempt budget
// would allow more retries.
func TestRescaleDeadlineBoundsRetries(t *testing.T) {
	e, _ := chaosEngine(t, chaos.Profile{RescaleFailProb: 1}, 5, func(c *Config) {
		c.RescaleMaxAttempts = 100
		c.RescaleBackoffSec = 10
		c.RescaleDeadlineSec = 35
	})
	t0 := e.Now()
	if err := e.SetParallelism(dataflow.ParallelismVector{2, 3, 2}); !errors.Is(err, ErrRescaleFailed) {
		t.Fatalf("want ErrRescaleFailed, got %v", err)
	}
	if burned := e.Now() - t0; burned > 35 {
		t.Fatalf("retry loop overran its deadline: burned %v sim-seconds", burned)
	}
}

// With a moderate failure rate the retry loop should eventually
// succeed, and the successful rescale behaves like a normal one.
func TestRescaleRetriesThenSucceeds(t *testing.T) {
	e, store := chaosEngine(t, chaos.Profile{RescaleFailProb: 0.5}, 3, nil)
	want := dataflow.ParallelismVector{2, 3, 2}
	ok := false
	for i := 0; i < 20 && !ok; i++ {
		p := want.Clone()
		p[1] = 3 + i%2
		if err := e.SetParallelism(p); err == nil {
			ok = true
		} else if !errors.Is(err, ErrRescaleFailed) {
			t.Fatal(err)
		}
	}
	if !ok {
		t.Fatal("no rescale succeeded in 20 tries at 50% failure rate")
	}
	if e.Restarts() == 0 {
		t.Fatal("successful rescale should restart the job")
	}
	if store.Counter("flink.rescales", map[string]string{"job": "test-job"}).Value() == 0 {
		t.Fatal("successful rescales should be counted")
	}
}

// Scheduled machine kills fire at their simulated time, pick the sorted
// first up machine when none is named, and never kill the last machine.
func TestScheduledMachineKillDeterministicVictim(t *testing.T) {
	profile := chaos.Profile{MachineEvents: []chaos.MachineEvent{
		{AtSec: 10, Down: true},  // victim: m1 (sorted first)
		{AtSec: 20, Down: true},  // refused: m2 is the last machine standing
		{AtSec: 30, Down: false}, // recovers m1
	}}
	e, _ := chaosEngine(t, profile, 9, nil)
	e.Run(15)
	if !e.Cluster().MachineDown("m1") {
		t.Fatal("victim selection must pick m1, the first up machine in sorted order")
	}
	if e.Cluster().MachineDown("m2") {
		t.Fatal("m2 should still be up")
	}
	e.Run(10)
	if e.Cluster().MachineDown("m2") {
		t.Fatal("the last machine must never be killed")
	}
	e.Run(10)
	if e.Cluster().MachineDown("m1") {
		t.Fatal("scheduled recovery must bring m1 back")
	}
}

// A partition stall throttles consumption (lag grows) and clears when
// the window ends.
func TestPartitionStallThrottlesConsumption(t *testing.T) {
	profile := chaos.Profile{Stalls: []chaos.StallWindow{{FromSec: 100, ToSec: 200, Fraction: 0.9}}}
	e, _ := chaosEngine(t, profile, 11, nil)
	if err := e.SetParallelism(dataflow.ParallelismVector{2, 3, 2}); err != nil {
		t.Fatal(err)
	}
	e.Run(95) // steady state before the stall
	lagBefore := e.Topic().Lag()
	e.Run(80) // inside the stall window
	lagDuring := e.Topic().Lag()
	if lagDuring <= lagBefore {
		t.Fatalf("stalled partitions should grow lag: before %v, during %v", lagBefore, lagDuring)
	}
	e.Run(300) // stall cleared; 2200 rps of capacity drains the backlog
	if lagAfter := e.Topic().Lag(); lagAfter >= lagDuring {
		t.Fatalf("lag should drain after the stall clears: during %v, after %v", lagDuring, lagAfter)
	}
}

// Dropped measurement ticks shrink the window but never corrupt the
// aggregates into negatives or NaNs.
func TestWindowDropShrinksMeasurement(t *testing.T) {
	e, _ := chaosEngine(t, chaos.Profile{WindowDropProb: 0.5}, 13, nil)
	e.ResetWindow()
	e.Run(200)
	m := e.Measure()
	if m.WindowSec >= 200 || m.WindowSec <= 0 {
		t.Fatalf("≈half the ticks should be dropped, window = %v", m.WindowSec)
	}
	if m.ThroughputRPS < 0 || m.ProcLatencyMS < 0 {
		t.Fatalf("dropped ticks must not corrupt aggregates: %+v", m)
	}
}

// The same seed must reproduce the identical engine trajectory under
// chaos — the core reproducibility contract.
func TestChaosEngineDeterministic(t *testing.T) {
	run := func() []float64 {
		e, _ := chaosEngine(t, chaos.Heavy(), 42, nil)
		var trail []float64
		for i := 0; i < 50; i++ {
			e.Run(30)
			m := e.Measure()
			trail = append(trail, m.ThroughputRPS, m.ProcLatencyMS, e.Topic().Lag())
		}
		return trail
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trajectory diverged at sample %d: %v vs %v", i, a[i], b[i])
		}
	}
}
