// Package flink is a deterministic discrete-time simulator of a stream
// processing system, standing in for the paper's Flink 1.10 + YARN
// testbed. It simulates a job (a dataflow.Graph) running on a
// cluster.Cluster, consuming from a kafka.Topic, and exposes exactly the
// observable surface the AuTraScale/DS2/DRS controllers need:
//
//   - true processing rate per operator instance (busy-time based, DS2's
//     metric, paper Eq. 2),
//   - observed processing rate (includes waiting, i.e. actual throughput
//     per instance),
//   - job throughput, processing latency, event-time latency, Kafka lag,
//   - CPU/memory usage for Fig. 8(c) accounting.
//
// # Performance model
//
// The per-instance true rate of operator i at parallelism k is a
// Universal-Scalability-Law curve scaled by cluster interference:
//
//	v_i(k) = BaseRate_i / (1 + σ_i·(k−1) + κ_i·k·(k−1)) · I(demand)
//
// where I is cluster.InterferenceFactor of the total provisioned CPU
// demand. σ captures synchronization between instances and κ cross-talk;
// together they produce the paper's Observation 2.1 (non-linear
// throughput scaling). Operators with ExternalCapRPS (the Yahoo
// benchmark's Redis) additionally have their *total* rate capped.
//
// Flink's credit-based backpressure keeps internal queues bounded and
// pushes accumulation back to Kafka, so the simulator routes all standing
// data into topic lag: per tick the source consumes
// min(input available, job bottleneck capacity).
//
// Latency per operator = fixed cost + queueing delay rising with
// utilization + communication cost growing linearly in parallelism
// (Observation 2.2). Event-time latency adds the Kafka pending time.
package flink

import (
	"errors"
	"fmt"
	"math"

	"autrascale/internal/chaos"
	"autrascale/internal/cluster"
	"autrascale/internal/dataflow"
	"autrascale/internal/kafka"
	"autrascale/internal/metrics"
	"autrascale/internal/stat"
	"autrascale/internal/trace"
)

// ErrRescaleFailed is returned (wrapped) when a rescale exhausts its
// retry budget or deadline. The controller treats it as a degraded —
// not fatal — outcome: it keeps the last-known-good configuration and
// re-plans on the next policy tick.
var ErrRescaleFailed = errors.New("flink: rescale failed")

// Config configures an Engine.
type Config struct {
	Graph   *dataflow.Graph
	Cluster *cluster.Cluster
	Topic   *kafka.Topic
	// Store receives per-tick metrics; optional.
	Store *metrics.Store
	// JobName tags metrics; defaults to the graph name.
	JobName string
	// Seed drives measurement noise; the same seed reproduces a run
	// exactly.
	Seed uint64
	// TickSec is the simulation step (default 1s).
	TickSec float64
	// RestartDowntimeSec is the savepoint-stop-restart outage when the
	// parallelism changes (default 10s) — §IV Execute.
	RestartDowntimeSec float64
	// RateNoise is the relative std-dev of per-tick rate jitter
	// (default 0.01). Zero noise is allowed via NoNoise.
	RateNoise float64
	// NoNoise disables all stochastic jitter.
	NoNoise bool
	// InitialParallelism is the starting configuration (default all 1).
	InitialParallelism dataflow.ParallelismVector
	// Tracer records rescale actions and measurement windows; nil
	// disables tracing. Per-tick work is never traced.
	Tracer *trace.Tracer
	// Chaos injects faults (failed/slow rescales, dropped or corrupted
	// measurement ticks, scheduled machine kills, partition stalls);
	// nil disables injection at zero cost.
	Chaos *chaos.Injector
	// RescaleMaxAttempts bounds how often a failed rescale is retried
	// before giving up (default 4).
	RescaleMaxAttempts int
	// RescaleBackoffSec is the first retry backoff in simulated
	// seconds; it doubles per attempt (default 5).
	RescaleBackoffSec float64
	// RescaleDeadlineSec bounds the total simulated time one rescale
	// may spend retrying (default 120).
	RescaleDeadlineSec float64
}

// Engine is the simulator instance for one job.
type Engine struct {
	graph   *dataflow.Graph
	cluster *cluster.Cluster
	topic   *kafka.Topic
	store   *metrics.Store
	tracer  *trace.Tracer
	jobName string
	rng     *stat.RNG
	chaos   *chaos.Injector

	tickSec     float64
	downtimeSec float64
	rateNoise   float64

	rescaleMaxAttempts int
	rescaleBackoffSec  float64
	rescaleDeadlineSec float64

	par          dataflow.ParallelismVector
	arrivalFac   []float64 // records arriving at op i per source record
	nowSec       float64
	restartUntil float64
	restarts     int

	// Per-tick state (recomputed every Tick, kept for Measure).
	lastThroughput   float64
	lastProcLatency  float64
	lastEventLatency float64
	lastTrueRates    []float64 // per-instance, per operator
	lastObserved     []float64
	lastLambda       []float64
	lastUtil         []float64
	lastCPUUsed      float64

	// Window accumulators since the last Reconfigure/ResetWindow.
	win windowAccum
}

type windowAccum struct {
	ticks          int
	throughput     float64
	procLatency    float64
	eventLatency   float64
	cpuUsed        float64
	trueRates      []float64
	observed       []float64
	lambda         []float64
	latencySamples []float64
}

// Measurement is the aggregate view of a measurement window — what the
// Monitor/Analyze stages hand to the policies.
type Measurement struct {
	Par           dataflow.ParallelismVector
	WindowSec     float64
	InputRateRPS  float64 // scheduled input rate at measurement end
	ThroughputRPS float64 // mean source consumption rate
	ProcLatencyMS float64 // mean processing latency
	EventLatMS    float64 // mean event-time latency (incl. Kafka pending)
	LagRecords    float64 // lag at measurement end
	// TrueRatePerInstance[i] is v̄_i: the mean busy-time processing rate
	// of one instance of operator i (op-input records/s).
	TrueRatePerInstance []float64
	// ObservedRatePerInstance[i] includes waiting time (actual records
	// processed per wall second per instance).
	ObservedRatePerInstance []float64
	// LambdaRPS[i] is the total arrival rate at operator i.
	LambdaRPS []float64
	// CPUUsedCores / MemUsedMB for resource accounting.
	CPUUsedCores float64
	MemUsedMB    float64
	// LatencySamples are per-record processing latencies drawn during
	// the window (for distribution plots, Fig. 8b).
	LatencySamples []float64
}

// New validates the configuration and builds an engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Graph == nil || cfg.Cluster == nil || cfg.Topic == nil {
		return nil, errors.New("flink: Graph, Cluster and Topic are required")
	}
	if err := cfg.Graph.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Graph.Sources()) != 1 {
		return nil, fmt.Errorf("flink: engine supports exactly one source operator, got %d", len(cfg.Graph.Sources()))
	}
	n := cfg.Graph.NumOperators()
	tick := cfg.TickSec
	if tick <= 0 {
		tick = 1
	}
	down := cfg.RestartDowntimeSec
	if down == 0 {
		down = 10
	}
	noise := cfg.RateNoise
	if noise == 0 {
		noise = 0.01
	}
	if cfg.NoNoise {
		noise = 0
	}
	name := cfg.JobName
	if name == "" {
		name = cfg.Graph.Name
	}
	par := cfg.InitialParallelism
	if par == nil {
		par = dataflow.Uniform(n, 1)
	}
	if err := par.Validate(cfg.Cluster.MaxParallelism()); err != nil {
		return nil, err
	}
	attempts := cfg.RescaleMaxAttempts
	if attempts <= 0 {
		attempts = 4
	}
	backoff := cfg.RescaleBackoffSec
	if backoff <= 0 {
		backoff = 5
	}
	deadline := cfg.RescaleDeadlineSec
	if deadline <= 0 {
		deadline = 120
	}
	e := &Engine{
		graph:              cfg.Graph,
		cluster:            cfg.Cluster,
		topic:              cfg.Topic,
		store:              cfg.Store,
		tracer:             cfg.Tracer,
		chaos:              cfg.Chaos,
		jobName:            name,
		rng:                stat.NewRNG(cfg.Seed ^ 0x9d5c_1fd3_0b77_4c2b),
		tickSec:            tick,
		downtimeSec:        down,
		rateNoise:          noise,
		rescaleMaxAttempts: attempts,
		rescaleBackoffSec:  backoff,
		rescaleDeadlineSec: deadline,
		par:                par.Clone(),
	}
	e.arrivalFac = arrivalFactors(cfg.Graph)
	e.resetWindow()
	return e, nil
}

// arrivalFactors computes a_i: records arriving at operator i per source
// record, propagating selectivity along the DAG in topological order.
func arrivalFactors(g *dataflow.Graph) []float64 {
	n := g.NumOperators()
	a := make([]float64, n)
	for _, src := range g.Sources() {
		a[src] = 1
	}
	for _, i := range g.TopoOrder() {
		out := a[i] * g.Operator(i).Selectivity
		for _, s := range g.Successors(i) {
			a[s] += out
		}
	}
	return a
}

// Graph returns the job graph.
func (e *Engine) Graph() *dataflow.Graph { return e.graph }

// Cluster returns the cluster.
func (e *Engine) Cluster() *cluster.Cluster { return e.cluster }

// Topic returns the source topic.
func (e *Engine) Topic() *kafka.Topic { return e.topic }

// JobName returns the metric tag for this job.
func (e *Engine) JobName() string { return e.jobName }

// Store returns the metrics store the engine records into (nil when
// metrics are disabled).
func (e *Engine) Store() *metrics.Store { return e.store }

// Tracer returns the engine's tracer (nil when tracing is disabled).
func (e *Engine) Tracer() *trace.Tracer { return e.tracer }

// Now returns the current simulation time in seconds.
func (e *Engine) Now() float64 { return e.nowSec }

// Restarts returns how many reconfigurations have happened.
func (e *Engine) Restarts() int { return e.restarts }

// RNGState returns the measurement-noise generator's stream position —
// persisted so a restored engine draws the same noise sequence a
// continued run would.
func (e *Engine) RNGState() uint64 { return e.rng.State() }

// RestoreRNGState repositions the measurement-noise generator; the
// inverse of RNGState.
func (e *Engine) RestoreRNGState(s uint64) { e.rng.SetState(s) }

// RestoreRestarts sets the reconfiguration counter — restored engines
// carry the pre-snapshot count forward so observability surfaces keep
// monotonic restart totals.
func (e *Engine) RestoreRestarts(n int) {
	if n > e.restarts {
		e.restarts = n
	}
}

// Parallelism returns the active configuration.
func (e *Engine) Parallelism() dataflow.ParallelismVector { return e.par.Clone() }

// SetParallelism reconfigures the job. If the configuration changes, the
// job incurs the savepoint/restart downtime and the measurement window
// resets (§IV: metrics during restart are ignored).
//
// Under fault injection a rescale attempt may fail; the engine then
// retries with exponential backoff (burning simulated time, during
// which the job keeps running on the old configuration) until the
// attempt budget or deadline is exhausted, at which point it returns an
// error wrapping ErrRescaleFailed and leaves the configuration — the
// last-known-good one — unchanged. Each retry increments the
// rescale_retries counter and, when tracing, emits a
// flink.rescale_attempt span.
func (e *Engine) SetParallelism(p dataflow.ParallelismVector) error {
	if len(p) != e.graph.NumOperators() {
		return fmt.Errorf("flink: parallelism has %d entries, graph has %d operators",
			len(p), e.graph.NumOperators())
	}
	if err := p.Validate(e.cluster.MaxParallelism()); err != nil {
		return err
	}
	if p.Equal(e.par) {
		return nil
	}
	backoff := e.rescaleBackoffSec
	deadline := e.nowSec + e.rescaleDeadlineSec
	for attempt := 1; ; attempt++ {
		if !e.chaos.FailRescale() {
			e.applyRescale(p, attempt)
			return nil
		}
		// Attempt failed: count the retry, back off in simulated time,
		// and try again — unless the budget or the deadline is spent.
		if e.store != nil {
			e.store.Counter("rescale_retries", map[string]string{"job": e.jobName}).Inc()
		}
		exhausted := attempt >= e.rescaleMaxAttempts || e.nowSec+backoff > deadline
		if e.tracer.Enabled() {
			sp := e.tracer.StartSpan("flink.rescale_attempt")
			sp.SetFloat("t_sec", e.nowSec)
			sp.SetStr("to", p.String())
			sp.SetInt("attempt", attempt)
			sp.SetBool("ok", false)
			sp.SetBool("gave_up", exhausted)
			sp.SetFloat("backoff_sec", backoff)
			sp.End()
		}
		if e.tracer.FlightEnabled() {
			e.tracer.Emit(trace.Record{
				TimeSec: e.nowSec,
				Kind:    trace.KindRescaleAttempt,
				Job:     e.jobName,
				Attrs: map[string]any{
					"to":      p.String(),
					"attempt": attempt,
					"ok":      false,
					"gave_up": exhausted,
				},
			})
		}
		if exhausted {
			return fmt.Errorf("%w: %s after %d attempt(s)", ErrRescaleFailed, p, attempt)
		}
		e.Run(backoff)
		backoff *= 2
	}
}

// applyRescale commits a successful rescale attempt: trace, count,
// switch configuration and start the savepoint/restart outage (plus any
// injected slow-savepoint delay).
func (e *Engine) applyRescale(p dataflow.ParallelismVector, attempt int) {
	down := e.downtimeSec + e.chaos.RescaleDelaySec()
	if e.tracer.Enabled() {
		sp := e.tracer.StartSpan("flink.rescale")
		sp.SetFloat("t_sec", e.nowSec)
		sp.SetStr("from", e.par.String())
		sp.SetStr("to", p.String())
		sp.SetInt("slots_delta", p.Total()-e.par.Total())
		sp.SetInt("attempt", attempt)
		sp.SetFloat("downtime_sec", down)
		sp.End()
	}
	if e.tracer.FlightEnabled() {
		e.tracer.Emit(trace.Record{
			TimeSec: e.nowSec,
			Kind:    trace.KindRescale,
			Job:     e.jobName,
			Attrs: map[string]any{
				"from":         e.par.String(),
				"to":           p.String(),
				"attempt":      attempt,
				"downtime_sec": down,
			},
		})
	}
	if e.store != nil {
		e.store.Counter("flink.rescales", map[string]string{"job": e.jobName}).Inc()
	}
	e.par = p.Clone()
	e.restartUntil = e.nowSec + down
	e.restarts++
	e.resetWindow()
}

func (e *Engine) resetWindow() {
	n := e.graph.NumOperators()
	e.win = windowAccum{
		trueRates: make([]float64, n),
		observed:  make([]float64, n),
		lambda:    make([]float64, n),
	}
}

// ResetWindow clears the measurement accumulators without reconfiguring —
// used to discard warm-up samples.
func (e *Engine) ResetWindow() { e.resetWindow() }

// noiseFactor returns a multiplicative jitter around 1.
func (e *Engine) noiseFactor() float64 {
	if e.rateNoise == 0 {
		return 1
	}
	f := 1 + e.rng.NormalMS(0, e.rateNoise)
	if f < 0.5 {
		f = 0.5
	}
	if f > 1.5 {
		f = 1.5
	}
	return f
}

// perInstanceRate returns the true per-instance processing rate of
// operator i under the current configuration and cluster interference
// factor, in op-input records/s, without measurement noise.
func (e *Engine) perInstanceRate(i int, interference float64) float64 {
	op := e.graph.Operator(i)
	k := float64(e.par[i])
	p := op.Profile
	usl := 1 + p.SyncCost*(k-1) + p.CrossCost*k*(k-1)
	rate := p.BaseRatePerInstance / usl * interference
	if p.ExternalCapRPS > 0 {
		total := rate * k
		if total > p.ExternalCapRPS {
			rate = p.ExternalCapRPS / k
		}
	}
	return rate
}

// cpuDemand is the CPU demand (core-equivalents) the configuration places
// on the cluster, weighted by each operator's utilization from the
// previous tick: a busy instance burns its full CPUPerInstance, an idle
// one only its polling floor (~10%). Before the first measurement the
// conservative assumption is fully-busy. Utilization lags one tick, which
// acts as a damped fixed-point iteration for the circular
// demand→interference→capacity→utilization dependency.
func (e *Engine) cpuDemand() float64 {
	const idleFloor = 0.1
	var d float64
	for i := 0; i < e.graph.NumOperators(); i++ {
		u := 1.0
		if len(e.lastUtil) == e.graph.NumOperators() && e.lastThroughput > 0 {
			u = e.lastUtil[i]
			if u < idleFloor {
				u = idleFloor
			}
			if u > 1 {
				u = 1
			}
		}
		d += float64(e.par[i]) * e.graph.Operator(i).Profile.CPUPerInstance * u
	}
	return d
}

// Tick advances the simulation by one step.
func (e *Engine) Tick() {
	if e.chaos.Enabled() {
		e.applyChaosSchedules()
	}
	dt := e.tickSec
	e.topic.Produce(e.nowSec, dt)
	e.nowSec += dt

	n := e.graph.NumOperators()
	if e.nowSec <= e.restartUntil {
		// Job is down for savepoint/restart: nothing is consumed, lag
		// grows, no metrics are recorded (the paper ignores metrics
		// during the restart phase).
		e.lastThroughput = 0
		return
	}

	interference := e.cluster.InterferenceFactor(e.cpuDemand())

	// Capacity per operator in op-input records/s, and the job bottleneck
	// expressed in source records/s.
	trueRates := make([]float64, n) // per instance
	capSource := math.Inf(1)
	for i := 0; i < n; i++ {
		r := e.perInstanceRate(i, interference) * e.noiseFactor()
		trueRates[i] = r
		total := r * float64(e.par[i])
		if e.arrivalFac[i] > 0 {
			if c := total / e.arrivalFac[i]; c < capSource {
				capSource = c
			}
		}
	}

	// Source pulls min(bottleneck capacity, available) from Kafka.
	pulled := e.topic.Consume(capSource * dt)
	throughput := pulled / dt

	// Arrivals, utilizations, latency.
	lambda := make([]float64, n)
	observed := make([]float64, n)
	util := make([]float64, n)
	var procLatency float64
	for i := 0; i < n; i++ {
		lambda[i] = throughput * e.arrivalFac[i]
		totalCap := trueRates[i] * float64(e.par[i])
		processed := lambda[i]
		if processed > totalCap {
			processed = totalCap
		}
		observed[i] = processed / float64(e.par[i])
		if totalCap > 0 {
			util[i] = lambda[i] / totalCap
		}
		procLatency += e.operatorLatencyMS(i, trueRates[i], util[i])
	}
	if e.rateNoise > 0 {
		procLatency *= e.noiseFactor()
	}

	pending := e.topic.PendingTimeSec(throughput)
	eventLatency := procLatency
	if math.IsInf(pending, 1) {
		eventLatency = math.MaxFloat64
	} else {
		eventLatency += pending * 1000
	}

	cpuUsed := e.cpuUsed(util)

	e.lastThroughput = throughput
	e.lastProcLatency = procLatency
	e.lastEventLatency = eventLatency
	e.lastTrueRates = trueRates
	e.lastObserved = observed
	e.lastLambda = lambda
	e.lastUtil = util
	e.lastCPUUsed = cpuUsed

	// Accumulate window stats. Fault injection may drop the tick from
	// the measurement window (reporter outage) or corrupt the measured
	// values by a multiplicative factor (sensor fault) — the simulated
	// system itself is unaffected, only what the policies observe.
	drop, corrupt := false, 1.0
	if e.chaos.Enabled() {
		drop, corrupt = e.chaos.WindowFault()
	}
	if drop {
		return
	}
	w := &e.win
	w.ticks++
	w.throughput += throughput * corrupt
	w.procLatency += procLatency * corrupt
	w.eventLatency += eventLatency * corrupt
	w.cpuUsed += cpuUsed
	for i := 0; i < n; i++ {
		w.trueRates[i] += trueRates[i] * corrupt
		w.observed[i] += observed[i] * corrupt
		w.lambda[i] += lambda[i] * corrupt
	}
	// One per-record latency sample per tick keeps distributions cheap.
	sample := procLatency * corrupt
	if e.rateNoise > 0 {
		sample *= e.rng.LogNormal(0, 0.2)
	}
	w.latencySamples = append(w.latencySamples, sample)

	e.recordMetrics(trueRates, observed, throughput, procLatency, eventLatency)
}

// applyChaosSchedules fires the injector's scheduled faults that are
// due at the current simulated time: machine kills/recoveries and
// partition-stall windows. Events naming no machine pick their victim
// deterministically from the cluster's sorted machine names, so the
// same schedule and seed always hit the same machines. An event the
// cluster refuses (e.g. killing the last machine) is skipped, never
// fatal.
func (e *Engine) applyChaosSchedules() {
	e.topic.SetStalledFraction(e.chaos.StallFraction(e.nowSec))
	for _, ev := range e.chaos.DueMachineEvents(e.nowSec) {
		name := ev.Machine
		if name == "" {
			name = e.chaosVictim(ev.Down)
		}
		if name == "" {
			continue
		}
		var err error
		if ev.Down {
			err = e.FailMachine(name)
		} else {
			err = e.RecoverMachine(name)
		}
		if err == nil && e.tracer.FlightEnabled() {
			rec := trace.Record{
				TimeSec: e.nowSec,
				Kind:    trace.KindChaosMachine,
				Job:     e.jobName,
				Attrs:   map[string]any{"machine": name, "down": ev.Down},
			}
			// A kill firing between controller steps has no decision in
			// flight; mint a chain key so the event never lands on corr 0
			// (audit treats corr 0 as "unattributable").
			if e.tracer.Corr() == 0 {
				rec.Corr = e.tracer.NewCorr()
			}
			e.tracer.Emit(rec)
		}
		if err != nil && e.tracer.Enabled() {
			sp := e.tracer.StartSpan("flink.chaos_event_skipped")
			sp.SetFloat("t_sec", e.nowSec)
			sp.SetStr("machine", name)
			sp.SetBool("down", ev.Down)
			sp.SetStr("error", err.Error())
			sp.End()
		}
	}
}

// chaosVictim selects the machine a scheduled event targets when the
// schedule names none: the first up machine in sorted-name order for a
// kill (never the last one standing), the first down machine for a
// recovery.
func (e *Engine) chaosVictim(down bool) string {
	if down {
		up := e.cluster.UpMachineNames()
		if len(up) < 2 {
			return ""
		}
		return up[0]
	}
	if d := e.cluster.DownMachineNames(); len(d) > 0 {
		return d[0]
	}
	return ""
}

// operatorLatencyMS returns the latency contribution of operator i:
// fixed + service + queueing + communication cost.
func (e *Engine) operatorLatencyMS(i int, perInstRate, util float64) float64 {
	p := e.graph.Operator(i).Profile
	lat := p.FixedLatencyMS
	if perInstRate > 0 {
		lat += 1000 / perInstRate // service time of one record
	}
	if p.QueueScaleMS > 0 && util > 0 {
		// Credit-based backpressure bounds standing queues, so the
		// M/M/1-style congestion factor saturates at the operator's
		// buffer budget instead of diverging.
		maxCongestion := p.MaxCongestion
		if maxCongestion == 0 {
			maxCongestion = 25
		}
		u := util
		if u > 1 {
			u = 1
		}
		f := maxCongestion
		if u < 1 {
			f = u / (1 - u)
			if f > maxCongestion {
				f = maxCongestion
			}
		}
		lat += p.QueueScaleMS * f
	}
	if p.StateCostMS > 0 {
		lat += p.StateCostMS / float64(e.par[i])
	}
	lat += p.CommCostPerParallelism * float64(e.par[i])
	return lat
}

// cpuUsed estimates cores in use: busy instances burn their full
// CPUPerInstance scaled by utilization, idle slots still poll (~10%).
func (e *Engine) cpuUsed(util []float64) float64 {
	var used float64
	for i := 0; i < e.graph.NumOperators(); i++ {
		p := e.graph.Operator(i).Profile
		u := util[i]
		if u < 0.1 {
			u = 0.1
		}
		if u > 1 {
			u = 1
		}
		used += float64(e.par[i]) * p.CPUPerInstance * u
	}
	return used
}

// MemUsedMB returns the managed memory held by the current slots.
func (e *Engine) MemUsedMB() float64 {
	var mem float64
	for i := 0; i < e.graph.NumOperators(); i++ {
		mem += float64(e.par[i]) * e.graph.Operator(i).Profile.MemPerInstanceMB
	}
	return mem
}

func (e *Engine) recordMetrics(trueRates, observed []float64, throughput, procLat, eventLat float64) {
	if e.store == nil {
		return
	}
	jobTags := map[string]string{"job": e.jobName}
	e.store.MustRecord(metrics.MetricThroughput, jobTags, e.nowSec, throughput)
	e.store.MustRecord(metrics.MetricLatencyMS, jobTags, e.nowSec, procLat)
	e.store.MustRecord(metrics.MetricEventTimeLatencyMS, jobTags, e.nowSec, eventLat)
	e.store.MustRecord(metrics.MetricKafkaLag, jobTags, e.nowSec, e.topic.Lag())
	for i := 0; i < e.graph.NumOperators(); i++ {
		opTags := map[string]string{
			"job":      e.jobName,
			"operator": e.graph.Operator(i).Name,
		}
		e.store.MustRecord(metrics.MetricTrueProcessingRate, opTags, e.nowSec, trueRates[i])
		e.store.MustRecord(metrics.MetricObservedRate, opTags, e.nowSec, observed[i])
		e.store.MustRecord(metrics.MetricInputRate, opTags, e.nowSec, e.lastLambda[i])
	}
}

// Run advances the simulation by the given number of seconds.
func (e *Engine) Run(seconds float64) {
	steps := int(seconds/e.tickSec + 0.5)
	for i := 0; i < steps; i++ {
		e.Tick()
	}
}

// Measure aggregates the accumulated window into a Measurement. It does
// not reset the window.
func (e *Engine) Measure() Measurement {
	n := e.graph.NumOperators()
	m := Measurement{
		Par:                     e.par.Clone(),
		InputRateRPS:            e.topic.InputRateAt(e.nowSec),
		LagRecords:              e.topic.Lag(),
		TrueRatePerInstance:     make([]float64, n),
		ObservedRatePerInstance: make([]float64, n),
		LambdaRPS:               make([]float64, n),
		MemUsedMB:               e.MemUsedMB(),
	}
	w := &e.win
	if w.ticks == 0 {
		return m
	}
	t := float64(w.ticks)
	m.WindowSec = t * e.tickSec
	m.ThroughputRPS = w.throughput / t
	m.ProcLatencyMS = w.procLatency / t
	m.EventLatMS = w.eventLatency / t
	m.CPUUsedCores = w.cpuUsed / t
	for i := 0; i < n; i++ {
		m.TrueRatePerInstance[i] = w.trueRates[i] / t
		m.ObservedRatePerInstance[i] = w.observed[i] / t
		m.LambdaRPS[i] = w.lambda[i] / t
	}
	m.LatencySamples = append([]float64(nil), w.latencySamples...)
	return m
}

// FailMachine takes a worker machine down: its slots fail over to the
// surviving machines (capacity shrinks, oversubscription-driven
// interference rises) and the job incurs a restart while Flink
// redeploys. Recover with RecoverMachine.
func (e *Engine) FailMachine(name string) error {
	if err := e.cluster.SetMachineDown(name, true); err != nil {
		return err
	}
	e.traceMachineEvent("flink.machine_fail", name)
	e.restartUntil = e.nowSec + e.downtimeSec
	e.restarts++
	e.resetWindow()
	return nil
}

// RecoverMachine brings a failed machine back; the job restarts once more
// as slots rebalance.
func (e *Engine) RecoverMachine(name string) error {
	if err := e.cluster.SetMachineDown(name, false); err != nil {
		return err
	}
	e.traceMachineEvent("flink.machine_recover", name)
	e.restartUntil = e.nowSec + e.downtimeSec
	e.restarts++
	e.resetWindow()
	return nil
}

// traceMachineEvent records a machine up/down transition.
func (e *Engine) traceMachineEvent(name, machine string) {
	if !e.tracer.Enabled() {
		return
	}
	sp := e.tracer.StartSpan(name)
	sp.SetFloat("t_sec", e.nowSec)
	sp.SetStr("machine", machine)
	sp.SetInt("max_parallelism", e.cluster.MaxParallelism())
	sp.End()
}

// SeekToLatest drops the source backlog (consumer jumps to the log head)
// and returns the number of records skipped. Trial-based evaluation uses
// this so each configuration is measured at steady state for the current
// input rate rather than while draining history from previous trials.
func (e *Engine) SeekToLatest() float64 {
	return e.topic.SeekToLatest()
}

// RunAndMeasure is the "policy running time" primitive from §IV: run a
// warm-up, reset the window, run the measurement phase, and return the
// aggregate.
func (e *Engine) RunAndMeasure(warmupSec, measureSec float64) Measurement {
	e.Run(warmupSec)
	e.resetWindow()
	e.Run(measureSec)
	m := e.Measure()
	e.traceWindow("flink.measure_window", warmupSec, measureSec, m)
	return m
}

// MeasureSteady evaluates the *steady-state* QoS of the current
// configuration: run the warm-up (absorbing any restart downtime), drop
// the backlog accumulated so far, then measure a clean window. This is
// how trial-based policies (Algorithm 1/2, DRS, DS2 offline) judge a
// candidate configuration without penalizing it for history it did not
// cause. The warm-up must exceed the restart downtime.
func (e *Engine) MeasureSteady(warmupSec, measureSec float64) Measurement {
	e.Run(warmupSec)
	e.SeekToLatest()
	e.resetWindow()
	e.Run(measureSec)
	m := e.Measure()
	e.traceWindow("flink.measure_steady", warmupSec, measureSec, m)
	return m
}

// traceWindow records a completed measurement window as a span.
func (e *Engine) traceWindow(name string, warmupSec, measureSec float64, m Measurement) {
	if !e.tracer.Enabled() {
		return
	}
	sp := e.tracer.StartSpan(name)
	sp.SetFloat("t_sec", e.nowSec)
	sp.SetStr("par", m.Par.String())
	sp.SetFloat("warmup_sec", warmupSec)
	sp.SetFloat("measure_sec", measureSec)
	sp.SetFloat("throughput_rps", m.ThroughputRPS)
	sp.SetFloat("latency_ms", m.ProcLatencyMS)
	sp.SetFloat("lag_records", m.LagRecords)
	sp.End()
}
