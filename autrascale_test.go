package autrascale_test

import (
	"testing"

	"autrascale"
)

// The facade exposes the full pipeline end to end: workload → engine →
// throughput optimization → Algorithm 1 → controller types.
func TestFacadeEndToEnd(t *testing.T) {
	spec := autrascale.WordCount()
	engine, err := autrascale.NewEngine(spec, autrascale.EngineOptions{Seed: 1, NoNoise: true})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := autrascale.OptimizeThroughput(engine, autrascale.ThroughputOptions{
		TargetRate: spec.DefaultRateRPS,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Base.String() != "(3, 4, 12, 10)" {
		t.Fatalf("base = %v", tr.Base)
	}
	res, err := autrascale.RunAlgorithm1(engine, tr.Base, autrascale.Algorithm1Config{
		TargetRate:      spec.DefaultRateRPS,
		TargetLatencyMS: spec.TargetLatencyMS,
		Seed:            2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Best.LatencyMet {
		t.Fatalf("best trial misses latency: %+v", res.Best)
	}
	if res.Model == nil {
		t.Fatal("no benefit model")
	}
	var bm autrascale.BenefitModel = res.Model
	if v := bm.PredictMean(res.Best.Par.Floats()); v <= 0 {
		t.Fatalf("model prediction = %v", v)
	}
}

func TestFacadeCustomJob(t *testing.T) {
	g := autrascale.NewGraph("custom")
	if err := g.AddOperator(autrascale.Operator{
		Name: "src", Kind: autrascale.KindSource, Selectivity: 1,
		Profile: autrascale.Profile{BaseRatePerInstance: 1000, CPUPerInstance: 1},
	}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddOperator(autrascale.Operator{
		Name: "sink", Kind: autrascale.KindSink,
		Profile: autrascale.Profile{BaseRatePerInstance: 500, CPUPerInstance: 1},
	}); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect("src", "sink"); err != nil {
		t.Fatal(err)
	}
	topic, err := autrascale.NewTopic("in", 4, autrascale.ConstantRate(800))
	if err != nil {
		t.Fatal(err)
	}
	engine, err := autrascale.NewCustomEngine(autrascale.EngineConfig{
		Graph:   g,
		Cluster: autrascale.PaperTestbed(),
		Topic:   topic,
		NoNoise: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := engine.RunAndMeasure(10, 60)
	if m.ThroughputRPS <= 0 {
		t.Fatal("no throughput")
	}
}

func TestFacadeHelpers(t *testing.T) {
	if autrascale.UniformParallelism(3, 2).Total() != 6 {
		t.Fatal("UniformParallelism wrong")
	}
	if autrascale.ExpectedImprovement(1, 0, 0, 0.01) != 0 {
		t.Fatal("EI with zero std should be 0")
	}
	if len(autrascale.AllWorkloads()) != 4 {
		t.Fatal("AllWorkloads should list 4 specs")
	}
	sched := autrascale.IncreasingRate(100, 50, 60)
	if sched.RateAt(61) != 150 {
		t.Fatal("IncreasingRate wrong")
	}
	if autrascale.NewMetricsStore().Len() != 0 {
		t.Fatal("fresh store should be empty")
	}
}
