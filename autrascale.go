// Package autrascale is an implementation of AuTraScale — "An Automated
// and Transfer Learning Solution for Streaming System Auto-Scaling"
// (Zhang, Zheng, Li, Shen, Guo — IPDPS 2021) — together with the full
// substrate the paper's evaluation needs: a deterministic Flink-like
// stream-processing simulator, a Kafka-like partitioned source, Gaussian
// process regression and Bayesian optimization built from scratch, the
// DS2 and DRS baselines, the paper's four benchmark workloads, and one
// experiment runner per table/figure of the evaluation section.
//
// # Quick start
//
//	spec := autrascale.WordCount()
//	engine, err := autrascale.NewEngine(spec, autrascale.EngineOptions{Seed: 1})
//	if err != nil { ... }
//
//	// Phase 1 (§III-C): find the minimum parallelism that sustains the
//	// input rate, using true processing rates (Eq. 3).
//	tr, err := autrascale.OptimizeThroughput(engine, autrascale.ThroughputOptions{
//	    TargetRate: spec.DefaultRateRPS,
//	})
//
//	// Phase 2 (Algorithm 1): Bayesian optimization of the benefit score
//	// until the latency target is met within the resource tolerance.
//	res, err := autrascale.RunAlgorithm1(engine, tr.Base, autrascale.Algorithm1Config{
//	    TargetRate:      spec.DefaultRateRPS,
//	    TargetLatencyMS: spec.TargetLatencyMS,
//	})
//	fmt.Println(res.Best.Par) // the recommended parallelism vector
//
// When the input rate changes, RunAlgorithm2 transfers the trained
// benefit model to the new rate instead of re-learning from scratch, and
// Controller runs the full MAPE loop (§IV) continuously.
//
// The package is a facade: implementation lives in internal/ packages
// (internal/core for the algorithms, internal/flink for the simulator,
// internal/gp + internal/bo for the learning stack, internal/baselines
// for DS2/DRS, internal/experiments for the paper's tables and figures).
package autrascale

import (
	"autrascale/internal/baselines/drs"
	"autrascale/internal/baselines/ds2"
	"autrascale/internal/bo"
	"autrascale/internal/chaos"
	"autrascale/internal/cluster"
	"autrascale/internal/core"
	"autrascale/internal/dataflow"
	"autrascale/internal/experiments"
	"autrascale/internal/fleet"
	"autrascale/internal/flink"
	"autrascale/internal/gp"
	"autrascale/internal/kafka"
	"autrascale/internal/metrics"
	"autrascale/internal/slo"
	"autrascale/internal/trace"
	"autrascale/internal/transfer"
	"autrascale/internal/workloads"
)

// ---- Job graphs and configurations (internal/dataflow) ----

type (
	// Graph is a stream-processing job: a DAG of operators.
	Graph = dataflow.Graph
	// Operator is one vertex of a job graph.
	Operator = dataflow.Operator
	// OperatorKind classifies operators (source/transform/window/sink).
	OperatorKind = dataflow.OperatorKind
	// Profile carries an operator's simulated performance parameters.
	Profile = dataflow.Profile
	// ParallelismVector assigns a parallelism to every operator — the
	// configuration space all policies search over.
	ParallelismVector = dataflow.ParallelismVector
)

// Operator kinds.
const (
	KindSource    = dataflow.KindSource
	KindTransform = dataflow.KindTransform
	KindWindow    = dataflow.KindWindow
	KindSink      = dataflow.KindSink
)

// NewGraph returns an empty job graph with the given name.
func NewGraph(name string) *Graph { return dataflow.NewGraph(name) }

// UniformParallelism returns an n-operator vector of k everywhere.
func UniformParallelism(n, k int) ParallelismVector { return dataflow.Uniform(n, k) }

// ---- Cluster and source substrate (internal/cluster, internal/kafka) ----

type (
	// Cluster models the worker machines and their interference.
	Cluster = cluster.Cluster
	// ClusterConfig configures NewCluster.
	ClusterConfig = cluster.Config
	// Machine is one worker node.
	Machine = cluster.Machine
	// Topic is the Kafka-like partitioned source log.
	Topic = kafka.Topic
	// RateSchedule yields the producer rate over time.
	RateSchedule = kafka.RateSchedule
	// ConstantRate is a fixed-rate schedule.
	ConstantRate = kafka.ConstantRate
	// StepSchedule changes rate at fixed boundaries.
	StepSchedule = kafka.StepSchedule
	// RateStep is one segment of a StepSchedule.
	RateStep = kafka.Step
)

// NewCluster builds a cluster from config.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return cluster.New(cfg) }

// PaperTestbed returns the paper's 3×20-core evaluation cluster.
func PaperTestbed() *Cluster { return cluster.PaperTestbed() }

// NewTopic creates a source topic with the given partition count and
// producer schedule.
func NewTopic(name string, partitions int, schedule RateSchedule) (*Topic, error) {
	return kafka.NewTopic(name, partitions, schedule)
}

// IncreasingRate builds the paper's CASE-1 style ramp schedule.
func IncreasingRate(startRate, stepRate, stepEverySec float64) RateSchedule {
	return kafka.IncreasingRate(startRate, stepRate, stepEverySec)
}

// ---- Simulator (internal/flink) ----

type (
	// Engine is the deterministic streaming-system simulator.
	Engine = flink.Engine
	// EngineConfig configures a bare engine (NewCustomEngine).
	EngineConfig = flink.Config
	// Measurement is an aggregated observation window.
	Measurement = flink.Measurement
	// MetricsStore is the in-memory time-series database.
	MetricsStore = metrics.Store
)

// NewCustomEngine assembles a simulator from explicit parts.
func NewCustomEngine(cfg EngineConfig) (*Engine, error) { return flink.New(cfg) }

// NewMetricsStore returns an empty time-series store.
func NewMetricsStore() *MetricsStore { return metrics.NewStore() }

// ---- Fault injection (internal/chaos) ----

type (
	// ChaosInjector makes seeded, reproducible fault decisions.
	ChaosInjector = chaos.Injector
	// ChaosProfile describes which faults to inject and how hard.
	ChaosProfile = chaos.Profile
	// MachineEvent schedules a machine kill or recovery.
	MachineEvent = chaos.MachineEvent
	// StallWindow stalls a fraction of source partitions for a period.
	StallWindow = chaos.StallWindow
)

// NewChaosInjector builds a fault injector reproducible from seed.
func NewChaosInjector(profile ChaosProfile, seed uint64) *ChaosInjector {
	return chaos.New(profile, seed)
}

// ChaosProfileByName resolves "none", "light" or "heavy".
func ChaosProfileByName(name string) (ChaosProfile, error) { return chaos.ByName(name) }

// ErrRescaleFailed marks a rescale that exhausted its retry budget.
var ErrRescaleFailed = flink.ErrRescaleFailed

// ---- Workloads (internal/workloads) ----

type (
	// WorkloadSpec describes a benchmark workload.
	WorkloadSpec = workloads.Spec
	// EngineOptions customizes NewEngine.
	EngineOptions = workloads.EngineOptions
)

// The paper's benchmark workloads (§V-A).
var (
	WordCount          = workloads.WordCount
	WordCountCaseStudy = workloads.WordCountCaseStudy
	Yahoo              = workloads.Yahoo
	NexmarkQ5          = workloads.NexmarkQ5
	NexmarkQ11         = workloads.NexmarkQ11
	AllWorkloads       = workloads.All
)

// NewEngine assembles a ready-to-run simulator for a workload.
func NewEngine(spec WorkloadSpec, opts EngineOptions) (*Engine, error) {
	return workloads.NewEngine(spec, opts)
}

// ---- AuTraScale policies (internal/core) ----

type (
	// ThroughputOptions controls the §III-C throughput optimizer.
	ThroughputOptions = core.ThroughputOptions
	// ThroughputResult is its outcome (Base is k').
	ThroughputResult = core.ThroughputResult
	// Algorithm1Config parameterizes Bayesian optimization at a steady
	// rate (paper Algorithm 1).
	Algorithm1Config = core.Algorithm1Config
	// Algorithm1Result is its outcome.
	Algorithm1Result = core.Algorithm1Result
	// Algorithm2Config parameterizes transfer learning at a changed rate
	// (paper Algorithm 2).
	Algorithm2Config = core.Algorithm2Config
	// Algorithm2Result is its outcome.
	Algorithm2Result = core.Algorithm2Result
	// Trial is one evaluated configuration.
	Trial = core.Trial
	// UnifiedModel is the rate-unbound joint benefit model (the paper's
	// stated future work): one GP over (parallelism, rate).
	UnifiedModel = core.UnifiedModel
	// UnifiedModelConfig parameterizes NewUnifiedModel.
	UnifiedModelConfig = core.UnifiedModelConfig
	// Controller is the MAPE control loop (§IV).
	Controller = core.Controller
	// ControllerConfig parameterizes it.
	ControllerConfig = core.ControllerConfig
	// ControllerEvent records one controller decision.
	ControllerEvent = core.Event
	// DecisionReport is the full "why this configuration" record kept
	// per planning session.
	DecisionReport = core.DecisionReport
)

// OptimizeThroughput runs the Eq. 3 iteration with AuTraScale's
// repeated-configuration termination and history review.
func OptimizeThroughput(e *Engine, opts ThroughputOptions) (ThroughputResult, error) {
	return core.OptimizeThroughput(e, opts)
}

// RunAlgorithm1 runs Bayesian optimization at a steady input rate.
func RunAlgorithm1(e *Engine, base ParallelismVector, cfg Algorithm1Config) (*Algorithm1Result, error) {
	return core.RunAlgorithm1(e, base, cfg)
}

// RunAlgorithm2 runs the transfer-learning method at a changed rate,
// reusing the previous benefit model.
func RunAlgorithm2(e *Engine, base ParallelismVector, prev BenefitModel, cfg Algorithm2Config) (*Algorithm2Result, error) {
	return core.RunAlgorithm2(e, base, prev, cfg)
}

// NewController builds the MAPE controller for an engine.
func NewController(e *Engine, cfg ControllerConfig) (*Controller, error) {
	return core.NewController(e, cfg)
}

// NewUnifiedModel builds an empty rate-unbound benefit model.
func NewUnifiedModel(cfg UnifiedModelConfig) (*UnifiedModel, error) {
	return core.NewUnifiedModel(cfg)
}

// ---- Learning stack (internal/gp, internal/bo, internal/transfer) ----

type (
	// BenefitModel predicts the benefit score of a configuration; the
	// fitted Gaussian process models satisfy it.
	BenefitModel = transfer.Predictor
	// GPRegressor is the exact Gaussian-process regressor.
	GPRegressor = gp.Regressor
	// BOOptimizer is the Bayesian-optimization loop over parallelism
	// vectors.
	BOOptimizer = bo.Optimizer
	// ModelLibrary stores benefit models keyed by input rate.
	ModelLibrary = transfer.ModelLibrary
)

// ExpectedImprovement exposes the acquisition function (Eq. 5–7).
func ExpectedImprovement(mean, std, fBest, xi float64) float64 {
	return bo.ExpectedImprovement(mean, std, fBest, xi)
}

// ---- Baselines (internal/baselines) ----

type (
	// DS2Policy is the DS2 (OSDI'18) linear-rule baseline.
	DS2Policy = ds2.Policy
	// DS2Result summarizes a DS2 run.
	DS2Result = ds2.Result
	// DS2RunOptions controls a DS2 control loop.
	DS2RunOptions = ds2.RunOptions
	// DRSPolicy is the queueing-theory DRS baseline.
	DRSPolicy = drs.Policy
	// DRSResult summarizes a DRS run.
	DRSResult = drs.Result
	// DRSRunOptions controls a DRS control loop.
	DRSRunOptions = drs.RunOptions
	// DRSVariant selects the rate metric DRS consumes.
	DRSVariant = drs.Variant
)

// DRS variants.
const (
	DRSTrueRate     = drs.VariantTrueRate
	DRSObservedRate = drs.VariantObservedRate
)

// NewDS2Policy builds a DS2 baseline policy.
func NewDS2Policy(pmax int, targetRate float64) (*DS2Policy, error) {
	return ds2.NewPolicy(pmax, targetRate)
}

// NewDRSPolicy builds a DRS baseline policy.
func NewDRSPolicy(v DRSVariant, pmax int, targetRate, targetLatencyMS float64) (*DRSPolicy, error) {
	return drs.NewPolicy(v, pmax, targetRate, targetLatencyMS)
}

// ---- Fleet control plane (internal/fleet) ----

type (
	// Fleet runs many AuTraScale jobs under one sharded scheduler with
	// cross-job model transfer (see docs/fleet.md).
	Fleet = fleet.Fleet
	// FleetConfig parameterizes NewFleet.
	FleetConfig = fleet.Config
	// FleetJobSpec describes one job submission.
	FleetJobSpec = fleet.JobSpec
	// FleetStatus is a point-in-time fleet snapshot.
	FleetStatus = fleet.Status
	// FleetJobStatus summarizes one job inside a snapshot.
	FleetJobStatus = fleet.JobStatus
	// FleetHealth is the fleet's incremental burn-rate health aggregate.
	FleetHealth = fleet.FleetHealth
	// FleetBurnRank is one entry of the fleet's worst-burn ranking.
	FleetBurnRank = fleet.BurnRank
)

// ---- SLO tracking and the flight recorder (internal/slo, internal/trace) ----

type (
	// SLOConfig parameterizes a per-job SLO tracker (burn-rate windows
	// and thresholds); set it on ControllerConfig.SLO.
	SLOConfig = slo.Config
	// SLOHealth is a tracker's point-in-time burn-rate report.
	SLOHealth = slo.Health
	// SLOState classifies a job: healthy, degraded, or burning.
	SLOState = slo.State
	// FlightRecorder is the bounded structured event journal linking
	// decisions, BO iterations, rescales, and chaos injections.
	FlightRecorder = trace.FlightRecorder
	// FlightRecord is one flight-recorder event.
	FlightRecord = trace.Record
)

// SLO health states, from best to worst.
const (
	SLOHealthy  = slo.StateHealthy
	SLODegraded = slo.StateDegraded
	SLOBurning  = slo.StateBurning
)

// NewFlightRecorder builds a flight recorder retaining the most recent
// capacity records (trace.DefaultFlightCapacity when capacity <= 0).
// Attach it to a tracer with Tracer.AttachFlight.
func NewFlightRecorder(capacity int) *FlightRecorder {
	return trace.NewFlightRecorder(capacity)
}

// Fleet job lifecycle states and sentinel errors.
const (
	FleetJobRunning     = fleet.StateRunning
	FleetJobQuarantined = fleet.StateQuarantined
	FleetJobDrained     = fleet.StateDrained
)

var (
	ErrFleetAdmissionRejected = fleet.ErrAdmissionRejected
	ErrFleetDuplicateJob      = fleet.ErrDuplicateJob
	ErrFleetUnknownJob        = fleet.ErrUnknownJob
)

// NewFleet builds an empty multi-job control plane.
func NewFleet(cfg FleetConfig) (*Fleet, error) { return fleet.New(cfg) }

// StaggeredFleetJobs builds n staggered-rate copies of a workload — the
// canonical fleet submission set.
func StaggeredFleetJobs(spec WorkloadSpec, n int, baseRate float64) []FleetJobSpec {
	return fleet.StaggeredJobs(spec, n, baseRate)
}

// ---- Experiments (internal/experiments) ----

type (
	// ExperimentTable is a renderable result table.
	ExperimentTable = experiments.Table
	// ElasticityScenario selects scale-up or scale-down.
	ElasticityScenario = experiments.Scenario
)

// Elasticity scenarios.
const (
	ScaleUp   = experiments.ScaleUp
	ScaleDown = experiments.ScaleDown
)

// Experiment runners, one per table/figure of the paper's evaluation,
// plus the design-choice ablations.
var (
	RunFig1       = experiments.RunFig1
	RunFig2       = experiments.RunFig2
	RunFig5       = experiments.RunFig5
	RunElasticity = experiments.RunElasticity
	RunFig8       = experiments.RunFig8
	RunTable4     = experiments.RunTable4
	RunAblation   = experiments.RunAblation
)
