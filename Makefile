# AuTraScale reproduction — common tasks.

GO ?= go

.PHONY: all build test race cover bench benchcmp check experiments summary fmt vet clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/metrics/ ./internal/jobs/ ./internal/core/ ./internal/bo/ ./internal/gp/ ./internal/mat/ ./internal/transfer/ ./internal/flink/ ./internal/trace/

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Micro-benchmarks the numerical core must not regress on. Each benchmark
# runs 3 times and the per-benchmark minimum is compared against
# BENCH_BASELINE.json; >20% slower in ns/op fails, and benchmarks with a
# recorded allocs/op fail on allocation growth (BenchmarkTraceOverhead is
# pinned at 0 allocs so tracing can never leak into the disabled hot
# path). Refresh the baseline after a deliberate change with:
#   make benchcmp BENCHCMP_FLAGS=-update
BENCHCMP_BENCHES = BenchmarkBOSuggest$$|BenchmarkGPFitPredict$$|BenchmarkGPAppend$$|BenchmarkPredictBatch$$|BenchmarkTraceOverhead$$
benchcmp:
	$(GO) test -run '^$$' -bench '$(BENCHCMP_BENCHES)' -benchmem -count 3 . \
		| $(GO) run ./cmd/benchcmp -baseline BENCH_BASELINE.json $(BENCHCMP_FLAGS)

# The full pre-merge gate: static checks, unit tests, the race detector
# on the concurrency-bearing packages, and the benchmark baseline.
check: vet test race benchcmp

# Reproduce every table and figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/experiments all

# Grade the paper's headline claims against this build.
summary:
	$(GO) run ./cmd/experiments summary

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
