# AuTraScale reproduction — common tasks.

GO ?= go

.PHONY: all build test race cover bench benchcmp chaos check experiments summary fmt vet clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/metrics/ ./internal/jobs/ ./internal/core/ ./internal/bo/ ./internal/gp/ ./internal/mat/ ./internal/transfer/ ./internal/flink/ ./internal/trace/ ./internal/chaos/

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Micro-benchmarks the numerical core must not regress on. Each benchmark
# runs 3 times and the per-benchmark minimum is compared against
# BENCH_BASELINE.json; >20% slower in ns/op fails, and benchmarks with a
# recorded allocs/op fail on allocation growth (BenchmarkTraceOverhead is
# pinned at 0 allocs so tracing can never leak into the disabled hot
# path). Refresh the baseline after a deliberate change with:
#   make benchcmp BENCHCMP_FLAGS=-update
BENCHCMP_BENCHES = BenchmarkBOSuggest$$|BenchmarkGPFitPredict$$|BenchmarkGPAppend$$|BenchmarkPredictBatch$$|BenchmarkTraceOverhead$$
benchcmp:
	$(GO) test -run '^$$' -bench '$(BENCHCMP_BENCHES)' -benchmem -count 3 . \
		| $(GO) run ./cmd/benchcmp -baseline BENCH_BASELINE.json $(BENCHCMP_FLAGS)

# Chaos gate: the fault-injection, property/metamorphic, and golden-trace
# layers (docs/chaos.md), then a short controller soak under the heavy
# fault profile across a fixed seed matrix — every seed is printed, so a
# failing soak is reproduced by re-running examples/chaos_soak with it.
CHAOS_SEEDS = 1 7 42
chaos:
	$(GO) test ./internal/chaos/
	$(GO) test -run 'Chaos|Rescale|Stall|WindowDrop|MachineKill' ./internal/flink/ ./internal/core/
	$(GO) test -run 'Property|Metamorphic|Golden|Threshold' ./internal/mat/ ./internal/gp/ ./internal/core/ ./internal/bo/
	@for seed in $(CHAOS_SEEDS); do \
		echo "== chaos soak: heavy profile, seed $$seed =="; \
		$(GO) run ./examples/chaos_soak -profile heavy -hours 1 -seed $$seed | tail -n 5 || exit 1; \
	done

# The full pre-merge gate: static checks, unit tests (which include the
# chaos, property, metamorphic, and golden layers), the race detector on
# the concurrency-bearing packages, the benchmark baseline, and the
# seeded chaos soak matrix.
check: vet test race benchcmp chaos

# Reproduce every table and figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/experiments all

# Grade the paper's headline claims against this build.
summary:
	$(GO) run ./cmd/experiments summary

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
