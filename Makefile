# AuTraScale reproduction — common tasks.

GO ?= go

.PHONY: all build test race cover bench experiments summary fmt vet clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/metrics/ ./internal/jobs/ ./internal/core/

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Reproduce every table and figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/experiments all

# Grade the paper's headline claims against this build.
summary:
	$(GO) run ./cmd/experiments summary

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
