# AuTraScale reproduction — common tasks.

GO ?= go

.PHONY: all build test race cover bench benchcmp profile chaos fleet audit tournament replay check experiments summary fmt vet clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/metrics/ ./internal/jobs/ ./internal/core/ ./internal/bo/ ./internal/gp/ ./internal/mat/ ./internal/transfer/ ./internal/flink/ ./internal/trace/ ./internal/chaos/ ./internal/fleet/ ./internal/slo/ ./internal/policy/ ./internal/experiments/ ./internal/persist/

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Micro-benchmarks the numerical core must not regress on. Each benchmark
# runs 3 times and the per-benchmark minimum is compared against
# BENCH_BASELINE.json; >20% slower in ns/op fails, and benchmarks with a
# recorded allocs/op fail on allocation growth (BenchmarkTraceOverhead is
# pinned at 0 allocs so tracing can never leak into the disabled hot
# path). Refresh the baseline after a deliberate change with:
#   make benchcmp BENCHCMP_FLAGS=-update
BENCHCMP_BENCHES = BenchmarkBOSuggest$$|BenchmarkGPFitPredict$$|BenchmarkGPAppend$$|BenchmarkPredictBatch$$|BenchmarkTraceOverhead$$|BenchmarkFleetTick$$|BenchmarkFleetTick10k$$|BenchmarkLibraryNearest$$|BenchmarkExposition10k$$|BenchmarkJournalDecode$$|BenchmarkPolicyStepBO$$|BenchmarkPolicyStepDS2$$|BenchmarkPolicyStepDRS$$|BenchmarkSnapshot10k$$
benchcmp:
	$(GO) test -run '^$$' -bench '$(BENCHCMP_BENCHES)' -benchmem -count 3 . \
		| $(GO) run ./cmd/benchcmp -baseline BENCH_BASELINE.json $(BENCHCMP_FLAGS)

# CPU and heap profiles of the fleet hot path (override PROFILE_BENCH to
# profile something else): writes fleet_cpu.prof / fleet_mem.prof and
# prints each profile's top-10 — the first stop when a benchcmp gate
# trips (docs/fleet.md).
PROFILE_BENCH = BenchmarkFleetTick10k$$
profile:
	$(GO) test -run '^$$' -bench '$(PROFILE_BENCH)' -benchtime 500x \
		-cpuprofile fleet_cpu.prof -memprofile fleet_mem.prof .
	$(GO) tool pprof -top -nodecount 10 fleet_cpu.prof
	$(GO) tool pprof -top -nodecount 10 -sample_index=alloc_space fleet_mem.prof

# Chaos gate: the fault-injection, property/metamorphic, and golden-trace
# layers (docs/chaos.md), then a short controller soak under the heavy
# fault profile across a fixed seed matrix — every seed is printed, so a
# failing soak is reproduced by re-running examples/chaos_soak with it.
CHAOS_SEEDS = 1 7 42
chaos:
	$(GO) test ./internal/chaos/
	$(GO) test -run 'Chaos|Rescale|Stall|WindowDrop|MachineKill' ./internal/flink/ ./internal/core/
	$(GO) test -run 'Property|Metamorphic|Golden|Threshold' ./internal/mat/ ./internal/gp/ ./internal/core/ ./internal/bo/
	@for seed in $(CHAOS_SEEDS); do \
		echo "== chaos soak: heavy profile, seed $$seed =="; \
		$(GO) run ./examples/chaos_soak -profile heavy -hours 1 -seed $$seed | tail -n 5 || exit 1; \
	done

# Fleet gate: the control-plane unit and golden tests, then a 64-job
# same-seed soak under the light fault profile across a seed matrix —
# each soak runs the fleet twice in-process (-verify) and fails unless
# the per-job decision sequences are identical (docs/fleet.md).
FLEET_SEEDS = 1 7 42
fleet:
	$(GO) test ./internal/fleet/
	@for seed in $(FLEET_SEEDS); do \
		echo "== fleet soak: 64 jobs, light profile, seed $$seed =="; \
		$(GO) run ./examples/fleet_scaling -jobs 64 -hours 1 -profile light -seed $$seed -verify | tail -n 3 || exit 1; \
	done

# Audit gate: the journal analytics layers (decoder, attribution, diff,
# golden journal), then the journal determinism proof — the same seeded
# fleet run at two worker counts must produce journals `flightctl diff`
# calls identical after corr canonicalization (docs/observability.md).
audit:
	$(GO) test ./internal/audit/ ./cmd/flightctl/
	@dir=$$(mktemp -d) && trap 'rm -rf "$$dir"' EXIT && \
	for w in 1 5; do \
		echo "== audit journal: 6 jobs, light profile, seed 42, workers $$w =="; \
		$(GO) run ./cmd/autrascale -jobs 6 -duration 3600 -chaos light -seed 42 \
			-workers $$w -flight "$$dir/w$$w.jsonl" | tail -n 1 || exit 1; \
	done && \
	$(GO) run ./cmd/flightctl diff "$$dir/w1.jsonl" "$$dir/w5.jsonl"

# Tournament gate: the policy plug-in layer's registry/adapter property
# tests and the tournament determinism + golden tests, then the small
# policy×schedule×chaos grid across a fixed seed matrix — three
# contenders, two schedules, two chaos profiles per seed, each cell a
# full controller run; any cell whose controller dies exits non-zero
# (docs/policies.md).
TOURNAMENT_SEEDS = 1 7 42
tournament:
	$(GO) test ./internal/policy/... ./internal/experiments/
	@for seed in $(TOURNAMENT_SEEDS); do \
		echo "== tournament: small grid, seed $$seed =="; \
		$(GO) run ./cmd/experiments -seed $$seed -workers 4 \
			-policies bo,ds2-online,drs-true -schedules step,flash-crowd \
			-chaos none,light -duration 1800 tournament || exit 1; \
	done

# Replay gate: the durability proof (docs/durability.md). Per seed, a
# heavy-chaos fleet soak runs with periodic checkpointing and is
# abandoned mid-flight ("crash" — the checkpoint on disk is whatever the
# cadence last landed); the fleet is then restored twice from that
# checkpoint and replayed to the same absolute time, and the two flight
# journals must be `flightctl diff`-identical — restore is deterministic
# from the snapshot bytes alone, under machine kills and all.
REPLAY_SEEDS = 1 7 42
replay:
	$(GO) test ./internal/persist/
	$(GO) test -run 'Replay|Restore|Persist|Checkpoint|Snapshot|Admin' ./internal/fleet/ ./cmd/metricsd/
	@dir=$$(mktemp -d) && trap 'rm -rf "$$dir"' EXIT && \
	for seed in $(REPLAY_SEEDS); do \
		echo "== replay: 6 jobs, heavy profile, seed $$seed =="; \
		$(GO) run ./cmd/autrascale -jobs 6 -duration 2400 -chaos heavy -seed $$seed \
			-checkpoint "$$dir/ckpt.json" -checkpoint-every 10 | tail -n 1 || exit 1; \
		for run in a b; do \
			$(GO) run ./cmd/autrascale -restore "$$dir/ckpt.json" -duration 7200 \
				-flight "$$dir/$$run.jsonl" | tail -n 1 || exit 1; \
		done; \
		$(GO) run ./cmd/flightctl diff "$$dir/a.jsonl" "$$dir/b.jsonl" || exit 1; \
	done

# The full pre-merge gate: static checks, unit tests (which include the
# chaos, property, metamorphic, and golden layers), the race detector on
# the concurrency-bearing packages, the benchmark baseline, the seeded
# chaos soak matrix, the fleet determinism soak, the journal audit gate,
# the policy tournament matrix, and the crash-replay durability gate.
check: vet test race benchcmp chaos fleet audit tournament replay

# Reproduce every table and figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/experiments all

# Grade the paper's headline claims against this build.
summary:
	$(GO) run ./cmd/experiments summary

fmt:
	gofmt -w .

# vet also fails on unformatted files: gofmt -l lists them, and any
# output is an error.
vet:
	$(GO) vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt fleet_cpu.prof fleet_mem.prof autrascale.test
