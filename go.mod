module autrascale

go 1.22
